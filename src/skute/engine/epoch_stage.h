#ifndef SKUTE_ENGINE_EPOCH_STAGE_H_
#define SKUTE_ENGINE_EPOCH_STAGE_H_

#include "skute/engine/epoch_context.h"

namespace skute {

/// Which part of the epoch lifecycle a stage belongs to.
enum class EpochPhase {
  kBegin,  ///< SkuteStore::BeginEpoch — before the epoch's traffic
  kRoute,  ///< SkuteStore::RouteQueryBatch — the epoch's query traffic
           ///< (may run any number of times between kBegin and kEnd)
  kEnd,    ///< SkuteStore::EndEpoch — after the epoch's traffic
};

/// \brief One step of the epoch pipeline. Stages are stateless between
/// epochs: everything they read or write lives in the EpochContext, so a
/// pipeline is just an ordered stage list and the store is just the
/// builder of contexts.
class EpochStage {
 public:
  virtual ~EpochStage() = default;

  /// Stable identifier for diagnostics and ordering tests.
  virtual const char* name() const = 0;

  virtual EpochPhase phase() const = 0;

  virtual void Run(EpochContext& ctx) = 0;
};

}  // namespace skute

#endif  // SKUTE_ENGINE_EPOCH_STAGE_H_
