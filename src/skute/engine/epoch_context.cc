#include "skute/engine/epoch_context.h"

#include "skute/obs/trace.h"

namespace skute {

const ShardPlan& EpochContext::Shards() {
  if (resolved_plan_ != nullptr) return *resolved_plan_;
  // Salted by the epoch: shard RNG streams differ epoch to epoch but
  // are identical across thread counts.
  const uint64_t salt = seed ^ (*epoch * 0xc2b2ae3d27d4eb4full);
  if (plan_cache != nullptr && placement_version != nullptr) {
    resolved_plan_ =
        &plan_cache->Get(*catalog, *options, salt, *placement_version);
  } else {
    shard_plan_ = ShardPlan::Build(*catalog, *options, salt);
    resolved_plan_ = &*shard_plan_;
  }
  return *resolved_plan_;
}

void EpochContext::RunSharded(const std::function<void(size_t, Rng*)>& fn,
                              const char* trace_label) {
  const ShardPlan& plan = Shards();
  RunIndexed(
      plan.shard_count(),
      [&](size_t shard) {
        Rng shard_rng = plan.ShardRng(shard);
        fn(shard, &shard_rng);
      },
      trace_label);
}

void EpochContext::RunIndexed(size_t count,
                              const std::function<void(size_t)>& fn,
                              const char* trace_label) {
  // Per-index spans land in the worker thread's own trace buffer, so the
  // fan-out stays lock-free; with tracing disabled the fan-out runs the
  // caller's fn untouched (one branch here, none per index).
  std::function<void(size_t)> traced;
  const std::function<void(size_t)>* run = &fn;
  if (trace_label != nullptr && obs::Tracer::Enabled()) {
    traced = [&fn, trace_label](size_t i) {
      obs::TraceSpan span("shard", trace_label, static_cast<uint64_t>(i));
      fn(i);
    };
    run = &traced;
  }
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) (*run)(i);
    return;
  }
  pool->ParallelFor(count, *run);
}

}  // namespace skute
