#include "skute/engine/epoch_context.h"

namespace skute {

const ShardPlan& EpochContext::Shards() {
  if (!shard_plan_.has_value()) {
    // Salted by the epoch: shard RNG streams differ epoch to epoch but
    // are identical across thread counts.
    const uint64_t salt = seed ^ (*epoch * 0xc2b2ae3d27d4eb4full);
    shard_plan_ = ShardPlan::Build(*catalog, *options, salt);
  }
  return *shard_plan_;
}

void EpochContext::RunSharded(
    const std::function<void(size_t, Rng*)>& fn) {
  const ShardPlan& plan = Shards();
  auto run_one = [&](size_t shard) {
    Rng shard_rng = plan.ShardRng(shard);
    fn(shard, &shard_rng);
  };
  if (pool == nullptr || plan.shard_count() <= 1) {
    for (size_t s = 0; s < plan.shard_count(); ++s) run_one(s);
    return;
  }
  pool->ParallelFor(plan.shard_count(), run_one);
}

}  // namespace skute
