#ifndef SKUTE_ENGINE_EPOCH_PIPELINE_H_
#define SKUTE_ENGINE_EPOCH_PIPELINE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "skute/common/histogram.h"
#include "skute/engine/epoch_context.h"
#include "skute/engine/epoch_stage.h"
#include "skute/engine/shard.h"
#include "skute/engine/worker_pool.h"

namespace skute {

/// Wall-time accounting of one pipeline stage (ROADMAP "pipeline-stage
/// metrics"): last run, lifetime totals, and the full per-run
/// distribution (p50/p95/max via `hist`) — surfaced by
/// MetricsCollector::WriteCsv, the micro benches, and the obs
/// MetricsRegistry adapters.
struct StageTiming {
  const char* name = "";
  EpochPhase phase = EpochPhase::kBegin;
  double last_ms = 0.0;
  double total_ms = 0.0;
  uint64_t runs = 0;
  /// Every per-run wall time, for percentile queries.
  Histogram hist;
};

/// \brief The ordered stage list that IS the epoch lifecycle:
///
///   kBegin: publish_prices
///   kRoute: route_queries   (once per RouteQueryBatch call, 0..n times)
///   kEnd:   record_balances -> propose_actions -> execute -> accounting
///
/// SkuteStore::BeginEpoch/RouteQueryBatch/EndEpoch are thin delegations
/// into Run(); all pass logic lives in the stages. The pipeline owns the
/// worker pool that the sharded stages fan out on (created lazily once
/// threads > 1).
class EpochPipeline {
 public:
  /// Builds the default six-stage pipeline.
  explicit EpochPipeline(const EpochOptions& options);
  ~EpochPipeline();

  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  /// Runs every stage of `phase`, in registration order, against `ctx`.
  /// Wires ctx.options and ctx.pool before the first stage.
  void Run(EpochPhase phase, EpochContext& ctx);

  /// Appends a custom stage (runs after the defaults of its phase) —
  /// the extension seam for metrics/tracing stages and for tests.
  void AddStage(std::unique_ptr<EpochStage> stage);

  /// Stage names of one phase, in execution order.
  std::vector<const char*> StageNames(EpochPhase phase) const;

  /// Per-stage wall-time counters, in registration order (kBegin and
  /// kEnd stages interleaved exactly as registered).
  const std::vector<StageTiming>& stage_timings() const {
    return timings_;
  }

  /// Registers the service plane's between-epochs serve window: the data
  /// plane (skute/net) pumps live connections here while the epoch engine
  /// runs underneath as the control plane. SkuteStore::EndEpoch invokes
  /// it once after the kEnd stages — before the caller snapshots metrics,
  /// so served ops land in the epoch they debited capacity from. Unset
  /// (the default) is a no-op: runs without a server stay bit-identical.
  void SetServeWindow(std::function<void()> fn) {
    serve_window_ = std::move(fn);
  }

  /// Runs the registered serve window, if any.
  void RunServeWindow() {
    if (serve_window_) serve_window_();
  }

  bool has_serve_window() const { return static_cast<bool>(serve_window_); }

  /// The cross-epoch shard-plan cache Run() wires into every context.
  const ShardPlanCache& shard_plan_cache() const { return plan_cache_; }

  const EpochOptions& options() const { return options_; }

 private:
  WorkerPool* PoolForRun();

  EpochOptions options_;
  std::vector<std::unique_ptr<EpochStage>> stages_;
  std::vector<StageTiming> timings_;  // parallel to stages_
  ShardPlanCache plan_cache_;
  std::unique_ptr<WorkerPool> pool_;  // lazily created, reused per epoch
  std::function<void()> serve_window_;  // service plane's data-plane pump
};

}  // namespace skute

#endif  // SKUTE_ENGINE_EPOCH_PIPELINE_H_
