#include "skute/engine/epoch_pipeline.h"

#include "skute/engine/stages.h"
#include "skute/obs/clock.h"
#include "skute/obs/trace.h"

namespace skute {

EpochPipeline::EpochPipeline(const EpochOptions& options)
    : options_(options) {
  AddStage(std::make_unique<PublishPricesStage>());
  AddStage(std::make_unique<RouteStage>());
  AddStage(std::make_unique<RecordBalancesStage>());
  AddStage(std::make_unique<ProposeActionsStage>());
  AddStage(std::make_unique<ExecuteStage>());
  AddStage(std::make_unique<DurabilityStage>());
  AddStage(std::make_unique<AccountingStage>());
}

EpochPipeline::~EpochPipeline() = default;

void EpochPipeline::AddStage(std::unique_ptr<EpochStage> stage) {
  StageTiming timing;
  timing.name = stage->name();
  timing.phase = stage->phase();
  timings_.push_back(timing);
  stages_.push_back(std::move(stage));
}

WorkerPool* EpochPipeline::PoolForRun() {
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.threads);
  }
  return pool_.get();
}

void EpochPipeline::Run(EpochPhase phase, EpochContext& ctx) {
  ctx.options = &options_;
  ctx.pool = PoolForRun();
  ctx.plan_cache = &plan_cache_;
  const uint64_t epoch =
      ctx.epoch != nullptr ? static_cast<uint64_t>(*ctx.epoch) : 0;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i]->phase() != phase) continue;
    const obs::StopWatch watch;
    {
      obs::TraceSpan span("stage", stages_[i]->name(), epoch);
      stages_[i]->Run(ctx);
    }
    const double ms = watch.ElapsedMs();
    timings_[i].last_ms = ms;
    timings_[i].total_ms += ms;
    ++timings_[i].runs;
    timings_[i].hist.Add(ms);
  }
}

std::vector<const char*> EpochPipeline::StageNames(EpochPhase phase) const {
  std::vector<const char*> names;
  for (const std::unique_ptr<EpochStage>& stage : stages_) {
    if (stage->phase() == phase) names.push_back(stage->name());
  }
  return names;
}

}  // namespace skute
