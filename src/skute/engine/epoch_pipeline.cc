#include "skute/engine/epoch_pipeline.h"

#include "skute/engine/stages.h"

namespace skute {

EpochPipeline::EpochPipeline(const EpochOptions& options)
    : options_(options) {
  stages_.push_back(std::make_unique<PublishPricesStage>());
  stages_.push_back(std::make_unique<RecordBalancesStage>());
  stages_.push_back(std::make_unique<ProposeActionsStage>());
  stages_.push_back(std::make_unique<ExecuteStage>());
  stages_.push_back(std::make_unique<AccountingStage>());
}

EpochPipeline::~EpochPipeline() = default;

void EpochPipeline::AddStage(std::unique_ptr<EpochStage> stage) {
  stages_.push_back(std::move(stage));
}

WorkerPool* EpochPipeline::PoolForRun() {
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.threads);
  }
  return pool_.get();
}

void EpochPipeline::Run(EpochPhase phase, EpochContext& ctx) {
  ctx.options = &options_;
  ctx.pool = PoolForRun();
  for (const std::unique_ptr<EpochStage>& stage : stages_) {
    if (stage->phase() == phase) stage->Run(ctx);
  }
}

std::vector<const char*> EpochPipeline::StageNames(EpochPhase phase) const {
  std::vector<const char*> names;
  for (const std::unique_ptr<EpochStage>& stage : stages_) {
    if (stage->phase() == phase) names.push_back(stage->name());
  }
  return names;
}

}  // namespace skute
