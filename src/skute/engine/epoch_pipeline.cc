#include "skute/engine/epoch_pipeline.h"

#include <chrono>

#include "skute/engine/stages.h"

namespace skute {

EpochPipeline::EpochPipeline(const EpochOptions& options)
    : options_(options) {
  AddStage(std::make_unique<PublishPricesStage>());
  AddStage(std::make_unique<RouteStage>());
  AddStage(std::make_unique<RecordBalancesStage>());
  AddStage(std::make_unique<ProposeActionsStage>());
  AddStage(std::make_unique<ExecuteStage>());
  AddStage(std::make_unique<AccountingStage>());
}

EpochPipeline::~EpochPipeline() = default;

void EpochPipeline::AddStage(std::unique_ptr<EpochStage> stage) {
  StageTiming timing;
  timing.name = stage->name();
  timing.phase = stage->phase();
  timings_.push_back(timing);
  stages_.push_back(std::move(stage));
}

WorkerPool* EpochPipeline::PoolForRun() {
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(options_.threads);
  }
  return pool_.get();
}

void EpochPipeline::Run(EpochPhase phase, EpochContext& ctx) {
  ctx.options = &options_;
  ctx.pool = PoolForRun();
  ctx.plan_cache = &plan_cache_;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i]->phase() != phase) continue;
    const auto start = std::chrono::steady_clock::now();
    stages_[i]->Run(ctx);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    timings_[i].last_ms = ms;
    timings_[i].total_ms += ms;
    ++timings_[i].runs;
  }
}

std::vector<const char*> EpochPipeline::StageNames(EpochPhase phase) const {
  std::vector<const char*> names;
  for (const std::unique_ptr<EpochStage>& stage : stages_) {
    if (stage->phase() == phase) names.push_back(stage->name());
  }
  return names;
}

}  // namespace skute
