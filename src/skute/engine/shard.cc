#include "skute/engine/shard.h"

#include <algorithm>

namespace skute {

size_t ShardPlan::ShardCountFor(size_t partitions,
                                const EpochOptions& options) {
  const size_t min_per_shard =
      options.min_partitions_per_shard == 0
          ? 1
          : options.min_partitions_per_shard;
  const size_t max_shards = options.max_shards == 0 ? 1 : options.max_shards;
  const size_t by_size = partitions / min_per_shard;
  return std::max<size_t>(1, std::min(by_size, max_shards));
}

ShardPlan ShardPlan::Build(const RingCatalog& catalog,
                           const EpochOptions& options, uint64_t rng_salt) {
  std::vector<const Partition*> all;
  all.reserve(catalog.total_partitions());
  catalog.ForEachPartition(
      [&](const Partition* p) { all.push_back(p); });

  ShardPlan plan;
  plan.rng_salt_ = rng_salt;
  const size_t shards = ShardCountFor(all.size(), options);
  plan.shards_.resize(shards);
  // Contiguous chunks, remainder spread over the leading shards.
  const size_t base = all.size() / shards;
  const size_t extra = all.size() % shards;
  size_t next = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t take = base + (s < extra ? 1 : 0);
    plan.shards_[s].assign(all.begin() + static_cast<ptrdiff_t>(next),
                           all.begin() + static_cast<ptrdiff_t>(next + take));
    next += take;
  }
  return plan;
}

size_t ShardPlan::total_partitions() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s.size();
  return total;
}

Rng ShardPlan::ShardRng(size_t shard) const {
  // SplitMix64 decorrelates the per-shard seeds even when rng_salt_ and
  // shard are small consecutive integers.
  SplitMix64 mix(rng_salt_ ^ (0x9e3779b97f4a7c15ull * (shard + 1)));
  return Rng(mix.Next());
}

const ShardPlan& ShardPlanCache::Get(const RingCatalog& catalog,
                                     const EpochOptions& options,
                                     uint64_t rng_salt,
                                     uint64_t placement_version) {
  if (!plan_.has_value() || built_version_ != placement_version) {
    plan_ = ShardPlan::Build(catalog, options, rng_salt);
    built_version_ = placement_version;
    ++builds_;
    return *plan_;
  }
  plan_->set_rng_salt(rng_salt);
  ++reuses_;
  return *plan_;
}

}  // namespace skute
