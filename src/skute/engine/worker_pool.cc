#include "skute/engine/worker_pool.h"

#include <exception>

namespace skute {

WorkerPool::WorkerPool(int threads) {
  const int workers = threads - 1;
  workers_.reserve(workers > 0 ? static_cast<size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::DrainJob(const std::function<void(size_t)>& fn,
                          size_t count) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    fn(i);
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = job_;
      count = job_count_;
    }
    DrainJob(*fn, count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Exception barrier: fn must not unwind through a worker
  // (std::terminate) or through the caller while workers still point at
  // the job. The first exception is captured and rethrown only after
  // every thread has left the job.
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::function<void(size_t)> guarded = [&](size_t i) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &guarded;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  DrainJob(guarded, count);  // the caller pulls its share of the indices
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    job_count_ = 0;
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace skute
