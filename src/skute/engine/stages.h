#ifndef SKUTE_ENGINE_STAGES_H_
#define SKUTE_ENGINE_STAGES_H_

#include "skute/engine/epoch_stage.h"

namespace skute {

/// \brief Opens the epoch (BeginEpoch): rolls every server's counters,
/// publishes the Eq. 1 virtual rents at the board, resets the per-epoch
/// counters, and accounts the board's publication messages.
class PublishPricesStage : public EpochStage {
 public:
  const char* name() const override { return "publish_prices"; }
  EpochPhase phase() const override { return EpochPhase::kBegin; }
  void Run(EpochContext& ctx) override;
};

/// \brief The parallel query-routing plane: routes the epoch's QueryBatch
/// (partition -> requested count) by sharding it with the decision
/// plane's shard layout and fanning the share computation — live-replica
/// selection, proximity weights, largest-remainder apportionment — out
/// over the worker pool. Per-shard accumulators (partition stats, ring
/// queries, query messages, replica shares) are merged on the calling
/// thread in shard order; capacity admission happens only in that merge
/// and is batched per server (one Server::ServeQueries debit per server
/// per batch, the grant split greedily over the shares), so routed/served
/// counters and drop placement are bit-for-bit identical for any thread
/// count — and identical to per-share admission.
class RouteStage : public EpochStage {
 public:
  const char* name() const override { return "route_queries"; }
  EpochPhase phase() const override { return EpochPhase::kRoute; }
  void Run(EpochContext& ctx) override;
};

/// \brief Eq. 5: records utility - rent for every live vnode, sharded by
/// partition. Per-ring rent spend is accumulated into per-shard partials
/// and merged in shard order, so the floating-point sum order — and hence
/// the reported rents — is identical for every thread count. As a side
/// product it fills EpochContext::streak_flags (post-record per-partition
/// balance-streak bits) for the proposal stage's dirty check.
class RecordBalancesStage : public EpochStage {
 public:
  const char* name() const override { return "record_balances"; }
  EpochPhase phase() const override { return EpochPhase::kEnd; }
  void Run(EpochContext& ctx) override;
};

/// \brief Runs the placement policy. Policies that support sharding
/// (EconomicPolicy) first get a BeginProposalEpoch prepare step — building
/// the per-epoch candidate scoring context and availability-cache epoch
/// once, fanned over the pool — then are invoked once per shard,
/// concurrently, each shard with its own rent-surcharge ledger; per-shard
/// action lists are concatenated in shard order and EndProposalEpoch
/// releases the borrowed per-epoch state. Legacy policies fall back to
/// the single whole-catalog call.
class ProposeActionsStage : public EpochStage {
 public:
  const char* name() const override { return "propose_actions"; }
  EpochPhase phase() const override { return EpochPhase::kEnd; }
  void Run(EpochContext& ctx) override;
};

/// \brief Applies the epoch's proposed actions through the
/// ActionExecutor's plan/commit protocol: a serial planning pass groups
/// the shuffled actions into conflict groups (disjoint server/partition
/// footprints), the groups apply concurrently on the worker pool — each
/// worker re-validating and admitting against only its group's servers,
/// snapshot streaming included — and a serial commit merges counters and
/// deferred vnode-registry mutations in group order. Grouping, in-group
/// order, and merge order are functions of the shuffle alone, so
/// threads=1 and threads=N stay bit-for-bit identical (the epoch's former
/// serialization point now scales with the pool).
class ExecuteStage : public EpochStage {
 public:
  const char* name() const override { return "execute"; }
  EpochPhase phase() const override { return EpochPhase::kEnd; }
  void Run(EpochContext& ctx) override;
};

/// \brief The epoch's durability quiesce point, between execution and
/// accounting: (1) under log shipping, syncs every dirty partition's
/// secondaries from its primary's log — incremental deltas when the
/// destination is warm from the same source, full snapshots otherwise —
/// and accounts the deferred consistency traffic; (2) every
/// checkpoint_interval epochs, checkpoints WAL-keeping backends (as pool
/// jobs when a pool exists); (3) sweeps backends with unflushed bytes
/// into the IoPool and drains it, so concurrent flush submissions for
/// one backend collapse into a single group-committed fsync. All work is
/// driven by epoch state and per-backend byte counts — a pure function
/// of the epoch's writes — so threads=1 and threads=N stay bit-for-bit
/// identical.
class DurabilityStage : public EpochStage {
 public:
  const char* name() const override { return "durability"; }
  EpochPhase phase() const override { return EpochPhase::kEnd; }
  void Run(EpochContext& ctx) override;
};

/// \brief Closes the epoch's books: transfer/communication accounting,
/// lifetime totals, and the epoch counter increment.
class AccountingStage : public EpochStage {
 public:
  const char* name() const override { return "accounting"; }
  EpochPhase phase() const override { return EpochPhase::kEnd; }
  void Run(EpochContext& ctx) override;
};

}  // namespace skute

#endif  // SKUTE_ENGINE_STAGES_H_
