#ifndef SKUTE_ENGINE_WORKER_POOL_H_
#define SKUTE_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace skute {

/// \brief A fixed pool of worker threads executing index-based parallel
/// loops — the epoch pipeline's fan-outs: partition shards for the
/// balance/proposal/route stages (EpochContext::RunSharded) and conflict
/// groups for the execute stage (EpochContext::RunIndexed).
///
/// The pool holds `threads - 1` workers: the calling thread participates
/// in every ParallelFor, so WorkerPool(1) spawns nothing and degrades to a
/// plain loop. Indices are claimed from a shared atomic counter
/// (self-balancing when shards are uneven); which thread runs which index
/// is nondeterministic, so callers must keep per-index work independent
/// and merge results by index.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total threads that execute a ParallelFor (workers + caller).
  int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// Not reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims indices from next_ until the current job is exhausted.
  void DrainJob(const std::function<void(size_t)>& fn, size_t count);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;  // guarded by mu_
  size_t job_count_ = 0;                              // guarded by mu_
  uint64_t generation_ = 0;                           // guarded by mu_
  int active_ = 0;                                    // guarded by mu_
  bool shutdown_ = false;                             // guarded by mu_

  std::atomic<size_t> next_{0};
};

}  // namespace skute

#endif  // SKUTE_ENGINE_WORKER_POOL_H_
