#ifndef SKUTE_ENGINE_SHARD_H_
#define SKUTE_ENGINE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "skute/common/random.h"
#include "skute/engine/epoch_options.h"
#include "skute/ring/catalog.h"

namespace skute {

/// \brief The epoch's deterministic partition sharding: contiguous chunks
/// of the catalog's partition iteration order, one chunk per logical
/// shard.
///
/// The shard count is a pure function of the partition count and the
/// EpochOptions — crucially, it never depends on EpochOptions::threads.
/// Worker threads are merely the executors of logical shards, so a run
/// with any thread count visits identical shard boundaries, each shard
/// sees an identical partition order, and per-shard outputs merged in
/// shard order are identical. That is the whole determinism argument of
/// the parallel decision plane.
class ShardPlan {
 public:
  /// Snapshot of the catalog's partitions, chunked. `rng_salt` seeds the
  /// per-shard RNG streams (callers pass seed ^ epoch so streams differ
  /// across epochs but not across thread counts).
  static ShardPlan Build(const RingCatalog& catalog,
                         const EpochOptions& options, uint64_t rng_salt);

  /// clamp(partitions / min_partitions_per_shard, 1, max_shards).
  static size_t ShardCountFor(size_t partitions,
                              const EpochOptions& options);

  size_t shard_count() const { return shards_.size(); }
  const std::vector<const Partition*>& shard(size_t i) const {
    return shards_[i];
  }
  size_t total_partitions() const;

  /// An independent deterministic RNG stream for one shard: a function of
  /// (rng_salt, shard) only. Stages that need randomness inside a shard
  /// draw from this, never from the store's sequential RNG, so the
  /// draw order cannot depend on thread interleaving.
  Rng ShardRng(size_t shard) const;

 private:
  std::vector<std::vector<const Partition*>> shards_;
  uint64_t rng_salt_ = 0;
};

}  // namespace skute

#endif  // SKUTE_ENGINE_SHARD_H_
