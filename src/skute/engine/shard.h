#ifndef SKUTE_ENGINE_SHARD_H_
#define SKUTE_ENGINE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "skute/common/random.h"
#include "skute/engine/epoch_options.h"
#include "skute/ring/catalog.h"

namespace skute {

/// \brief The epoch's deterministic partition sharding: contiguous chunks
/// of the catalog's partition iteration order, one chunk per logical
/// shard.
///
/// The shard count is a pure function of the partition count and the
/// EpochOptions — crucially, it never depends on EpochOptions::threads.
/// Worker threads are merely the executors of logical shards, so a run
/// with any thread count visits identical shard boundaries, each shard
/// sees an identical partition order, and per-shard outputs merged in
/// shard order are identical. That is the whole determinism argument of
/// the parallel decision plane.
class ShardPlan {
 public:
  /// Snapshot of the catalog's partitions, chunked. `rng_salt` seeds the
  /// per-shard RNG streams (callers pass seed ^ epoch so streams differ
  /// across epochs but not across thread counts).
  static ShardPlan Build(const RingCatalog& catalog,
                         const EpochOptions& options, uint64_t rng_salt);

  /// clamp(partitions / min_partitions_per_shard, 1, max_shards).
  static size_t ShardCountFor(size_t partitions,
                              const EpochOptions& options);

  size_t shard_count() const { return shards_.size(); }
  const std::vector<const Partition*>& shard(size_t i) const {
    return shards_[i];
  }
  size_t total_partitions() const;

  /// An independent deterministic RNG stream for one shard: a function of
  /// (rng_salt, shard) only. Stages that need randomness inside a shard
  /// draw from this, never from the store's sequential RNG, so the
  /// draw order cannot depend on thread interleaving.
  Rng ShardRng(size_t shard) const;

  /// Reseeds the per-shard RNG streams. The chunk layout is a pure
  /// function of the catalog, so a cached plan is re-used across epochs
  /// by swapping in the new epoch's salt (see ShardPlanCache).
  void set_rng_salt(uint64_t salt) { rng_salt_ = salt; }

 private:
  std::vector<std::vector<const Partition*>> shards_;
  uint64_t rng_salt_ = 0;
};

/// \brief Cross-epoch ShardPlan cache (ROADMAP "shard-plan reuse"): the
/// chunk layout is rebuilt only when the placement actually changed
/// (placement_version moved — splits, repairs, migrations, failures,
/// ring attachment all bump it), instead of O(partitions) every epoch.
/// Reuse is exact: a cached plan is bit-identical to a fresh Build
/// because partitions are never destroyed and the catalog's iteration
/// order only changes on events that bump placement_version.
class ShardPlanCache {
 public:
  /// The plan for this epoch: cached when `placement_version` matches
  /// the build version, rebuilt otherwise. `rng_salt` is applied either
  /// way (per-epoch shard RNG streams).
  const ShardPlan& Get(const RingCatalog& catalog,
                       const EpochOptions& options, uint64_t rng_salt,
                       uint64_t placement_version);

  void Invalidate() { plan_.reset(); }

  /// Observability for the micro benches: how often the cache saved a
  /// rebuild.
  uint64_t builds() const { return builds_; }
  uint64_t reuses() const { return reuses_; }

 private:
  std::optional<ShardPlan> plan_;
  uint64_t built_version_ = 0;
  uint64_t builds_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace skute

#endif  // SKUTE_ENGINE_SHARD_H_
