#ifndef SKUTE_ENGINE_EPOCH_CONTEXT_H_
#define SKUTE_ENGINE_EPOCH_CONTEXT_H_

#include <functional>
#include <optional>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/random.h"
#include "skute/core/comm_stats.h"
#include "skute/core/decision.h"
#include "skute/core/net_stats.h"
#include "skute/core/executor.h"
#include "skute/core/policy.h"
#include "skute/core/query_routing.h"
#include "skute/core/vnode.h"
#include "skute/engine/epoch_options.h"
#include "skute/engine/shard.h"
#include "skute/engine/worker_pool.h"
#include "skute/io/durability_options.h"
#include "skute/ring/catalog.h"
#include "skute/storage/replica_store.h"

#include <unordered_set>

namespace skute {

class IoPool;

/// \brief Everything one epoch's pipeline run reads and writes: a borrowed
/// view of the store's substrate plus the state staged between stages.
///
/// The context owns nothing. The store builds one per BeginEpoch/EndEpoch
/// call, pointing at its own members; stages communicate exclusively
/// through it (e.g. ProposeActionsStage fills `actions`, ExecuteStage
/// consumes them), which is what makes the stage list reorderable and
/// testable in isolation.
class EpochContext {
 public:
  // --- Substrate (borrowed from the store) --------------------------------
  Cluster* cluster = nullptr;
  RingCatalog* catalog = nullptr;
  VNodeRegistry* vnodes = nullptr;
  PlacementPolicy* policy = nullptr;
  ActionExecutor* executor = nullptr;
  /// The store's sequential RNG (executor shuffle); per-shard streams come
  /// from Shards().ShardRng instead.
  Rng* rng = nullptr;
  const DecisionParams* decision = nullptr;
  const EpochOptions* options = nullptr;
  /// Per-ring policies; set for the end phase, nullptr during begin.
  const std::vector<RingPolicy>* policies = nullptr;
  /// Worker pool for sharded stages; nullptr = run shards inline.
  WorkerPool* pool = nullptr;
  /// Cross-epoch shard-plan cache (owned by the pipeline); nullptr makes
  /// Shards() build a context-local plan (tests that run stages alone).
  ShardPlanCache* plan_cache = nullptr;

  // --- Per-epoch mutable state (borrowed from the store) ------------------
  Epoch* epoch = nullptr;
  uint64_t seed = 0;  // store seed; salts the per-shard RNG streams
  PartitionStatsMap* stats = nullptr;
  std::vector<uint64_t>* ring_queries_epoch = nullptr;
  std::vector<double>* ring_spend_epoch = nullptr;
  std::vector<double>* ring_spend_total = nullptr;
  CommStats* comm_epoch = nullptr;
  CommStats* comm_total = nullptr;
  /// Service-plane counters (skute/net); rolled into net_total and
  /// cleared by PublishPricesStage. Always non-null when built by the
  /// store — the counters just stay zero with no server attached.
  NetStats* net_epoch = nullptr;
  NetStats* net_total = nullptr;
  ExecutorStats* last_stats = nullptr;
  /// The store's per-epoch routing totals (cleared by PublishPricesStage,
  /// accumulated by the store after each RouteStage run).
  RouteResult* last_route = nullptr;
  uint64_t* placement_version = nullptr;

  // --- Durability plane (borrowed from the store) -------------------------
  /// Per-server replica data; nullptr when real data is off (the
  /// durability stage then has nothing to flush, sync, or checkpoint).
  ReplicaDataMap* replica_data = nullptr;
  /// I/O offload pool; nullptr when durability.io_threads == 0.
  IoPool* io_pool = nullptr;
  const DurabilityOptions* durability = nullptr;
  /// Partitions whose primary took log-shipped writes this epoch; the
  /// durability stage syncs secondaries from them and clears the set.
  std::unordered_set<PartitionId>* dirty_partitions = nullptr;

  // --- Staged data (owned by the context, passed between stages) ----------
  /// Proposal stage output, execution stage input.
  std::vector<Action> actions;

  /// Per-partition balance-streak flags (kStreak* bits, indexed by
  /// PartitionId): filled by RecordBalancesStage — which already visits
  /// every vnode — and consumed by ProposeActionsStage's prepare step so
  /// the decision engine's dirty check skips the registry lookups.
  /// Empty when the proposal cache is disabled.
  std::vector<uint8_t> streak_flags;

  /// RouteStage input: the query workload to route (borrowed from the
  /// caller of SkuteStore::RouteQueryBatch); nullptr outside kRoute runs.
  const QueryBatch* query_batch = nullptr;
  /// RouteStage output: this batch's routing outcome.
  RouteResult route_result;

  /// The epoch's shard plan, resolved on first use (RecordBalancesStage
  /// and ProposeActionsStage share one snapshot; partitions are never
  /// created mid-pipeline, so the snapshot stays valid through
  /// execution). Served from the pipeline's ShardPlanCache when wired —
  /// rebuilt only when placement_version moved since the last epoch.
  const ShardPlan& Shards();

  /// Runs fn(shard, shard_rng) for every shard of Shards(), on the worker
  /// pool when present. Shard-to-thread assignment is nondeterministic;
  /// fn must only write shard-local state, merged by the caller in shard
  /// order. `trace_label` (a string literal) names each shard's span when
  /// tracing is enabled; nullptr records no spans.
  void RunSharded(const std::function<void(size_t, Rng*)>& fn,
                  const char* trace_label = nullptr);

  /// Runs fn(i) for every i in [0, count) on the worker pool when present
  /// (inline otherwise). The generic index fan-out for stages whose work
  /// units are not partition shards — the ExecuteStage's conflict groups.
  /// Index-to-thread assignment is nondeterministic; fn must only write
  /// index-local state, merged by the caller in index order.
  /// `trace_label` as in RunSharded.
  void RunIndexed(size_t count, const std::function<void(size_t)>& fn,
                  const char* trace_label = nullptr);

 private:
  const ShardPlan* resolved_plan_ = nullptr;
  std::optional<ShardPlan> shard_plan_;  // fallback without a cache
};

}  // namespace skute

#endif  // SKUTE_ENGINE_EPOCH_CONTEXT_H_
