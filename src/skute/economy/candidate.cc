#include "skute/economy/candidate.h"

#include <algorithm>

#include "skute/common/hash.h"
#include "skute/topology/location.h"

namespace skute {

double SurchargeOf(const RentSurcharge* surcharge, ServerId id) {
  if (surcharge == nullptr) return 0.0;
  const auto it = surcharge->find(id);
  return it == surcharge->end() ? 0.0 : it->second;
}

bool CandidateAdmissible(const Server& server, uint64_t bytes_needed,
                         const CandidateParams& params) {
  if (!server.online()) return false;
  if (server.available_storage() < bytes_needed) return false;
  const uint64_t capacity = server.resources().storage_capacity;
  if (capacity == 0) return false;
  const double after =
      static_cast<double>(server.used_storage() + bytes_needed) /
      static_cast<double>(capacity);
  return after <= params.max_target_storage_utilization;
}

std::vector<ServerId> ReplicaServerSet(const Partition& partition,
                                       ServerId moving_from) {
  std::vector<ServerId> out;
  out.reserve(partition.replica_count());
  for (const ReplicaInfo& r : partition.replicas()) {
    if (r.server == moving_from) continue;
    out.push_back(r.server);
  }
  return out;
}

double ScoreCandidateForSet(const Cluster& cluster,
                            const std::vector<ServerId>& replica_servers,
                            const Server& candidate, const ClientMix* mix,
                            const CandidateParams& params,
                            const RentSurcharge* surcharge) {
  double diversity_sum = 0.0;
  for (ServerId id : replica_servers) {
    const Server* s = cluster.server(id);
    if (s == nullptr || !s->online()) continue;
    diversity_sum += static_cast<double>(
        DiversityValue(s->location(), candidate.location()));
  }
  const double g = mix == nullptr
                       ? 1.0
                       : NormalizedProximity(*mix, candidate.location());
  const double conf = candidate.economics().confidence;
  const double rent = cluster.board().RentOf(candidate.id()) +
                      SurchargeOf(surcharge, candidate.id());
  return params.diversity_weight * g * conf * diversity_sum - rent;
}

Result<CandidateChoice> SelectTargetForSet(
    const Cluster& cluster, const std::vector<ServerId>& replica_servers,
    uint64_t bytes_needed, const ClientMix* mix,
    const CandidateParams& params, const std::vector<ServerId>& exclude,
    const RentSurcharge* surcharge, uint64_t tie_break_salt) {
  CandidateChoice best;
  bool found = false;
  double best_rent = 0.0;
  uint64_t best_salted = 0;

  // Replica sets and exclusions are a handful of ids: one small sorted
  // vector replaces two linear std::find scans per candidate.
  std::vector<ServerId> skip = replica_servers;
  skip.insert(skip.end(), exclude.begin(), exclude.end());
  std::sort(skip.begin(), skip.end());

  for (ServerId id = 0; id < cluster.size(); ++id) {
    const Server* s = cluster.server(id);
    if (s == nullptr) continue;
    if (!CandidateAdmissible(*s, bytes_needed, params)) continue;
    if (std::binary_search(skip.begin(), skip.end(), id)) continue;

    // Inline ScoreCandidateForSet so the rent — shared by the score and
    // the tie-break — is computed once per candidate.
    double diversity_sum = 0.0;
    for (ServerId rid : replica_servers) {
      const Server* rs = cluster.server(rid);
      if (rs == nullptr || !rs->online()) continue;
      diversity_sum += static_cast<double>(
          DiversityValue(rs->location(), s->location()));
    }
    const double g = mix == nullptr
                         ? 1.0
                         : NormalizedProximity(*mix, s->location());
    const double conf = s->economics().confidence;
    const double rent =
        cluster.board().RentOf(id) + SurchargeOf(surcharge, id);
    const double score =
        params.diversity_weight * g * conf * diversity_sum - rent;
    // Salted order decorrelates exact ties across partitions (see the
    // header comment); deterministic for a given salt.
    const uint64_t salted = Mix64(id ^ tie_break_salt);
    if (!found || score > best.score ||
        (score == best.score &&
         (rent < best_rent ||
          (rent == best_rent && salted < best_salted)))) {
      best.server = id;
      best.score = score;
      best_rent = rent;
      best_salted = salted;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no feasible replica target");
  }
  return best;
}

Result<CandidateChoice> SelectReplicaTarget(
    const Cluster& cluster, const Partition& partition,
    const ClientMix* mix, const CandidateParams& params,
    const std::vector<ServerId>& exclude, ServerId moving_from) {
  return SelectTargetForSet(cluster,
                            ReplicaServerSet(partition, moving_from),
                            partition.bytes(), mix, params, exclude,
                            /*surcharge=*/nullptr,
                            /*tie_break_salt=*/partition.id());
}

}  // namespace skute
