#ifndef SKUTE_ECONOMY_PRICING_H_
#define SKUTE_ECONOMY_PRICING_H_

#include <cstdint>

namespace skute {

/// \brief Cost of keeping one more replica consistent (Section II-C: a
/// replicating vnode must "compensate for the increased network cost for
/// data consistency"). Modeled as a per-epoch charge that grows with the
/// replica count (update fan-out) and with the write traffic:
///
///   cost(R, w) = fixed + per_replica * R + per_write_byte * w
struct ConsistencyCostModel {
  double fixed_per_epoch = 0.05;
  double per_replica_per_epoch = 0.05;
  double per_write_byte = 1e-8;  // ~0.01 per MB of epoch writes

  double Cost(size_t replica_count, uint64_t write_bytes_per_epoch) const {
    return fixed_per_epoch +
           per_replica_per_epoch * static_cast<double>(replica_count) +
           per_write_byte * static_cast<double>(write_bytes_per_epoch);
  }
};

/// \brief Pure Eq. 1, exposed for tests and benches (the Board applies the
/// same formula with `up` derived from server state):
///   c = up * (1 + alpha * storage_usage + beta * query_load)
inline double VirtualRent(double up, double storage_usage, double query_load,
                          double alpha, double beta) {
  return up * (1.0 + alpha * storage_usage + beta * query_load);
}

}  // namespace skute

#endif  // SKUTE_ECONOMY_PRICING_H_
