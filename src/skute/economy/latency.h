#ifndef SKUTE_ECONOMY_LATENCY_H_
#define SKUTE_ECONOMY_LATENCY_H_

#include "skute/economy/proximity.h"

namespace skute {

/// \brief Network-latency model over the paper's diversity ladder — the
/// paper's conclusion defers "latency and communication overhead"
/// analysis to future work; this is that model.
///
/// Maps the geographic-diversity value between a client and the serving
/// replica to a round-trip estimate: same server ~0.1 ms (loopback),
/// same rack ~0.3 ms, same room ~0.5 ms, same datacenter ~1 ms, same
/// country ~12 ms, same continent ~40 ms, inter-continental ~150 ms —
/// the usual order-of-magnitude ladder of WAN measurements (cf. the
/// paper's [2]).
double EstimateRttMs(uint8_t diversity);

/// Expected query RTT from a client mix to one serving replica: the
/// query-weighted mean of EstimateRttMs over the client locations.
/// A null/empty mix uses the uniform-clients reference diversity.
double ExpectedQueryRttMs(const ClientMix* mix, const Location& server);

}  // namespace skute

#endif  // SKUTE_ECONOMY_LATENCY_H_
