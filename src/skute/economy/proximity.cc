#include "skute/economy/proximity.h"

namespace skute {

double ClientMix::TotalQueries() const {
  double total = 0.0;
  for (const ClientLoad& l : loads) total += l.queries;
  return total;
}

double RawEq4Proximity(const ClientMix& mix, const Location& server) {
  double total = 0.0;
  double weighted = 0.0;
  for (const ClientLoad& l : mix.loads) {
    total += l.queries;
    weighted += l.queries *
                static_cast<double>(DiversityValue(l.location, server));
  }
  return total / (1.0 + weighted);
}

double MeanClientDiversity(const ClientMix& mix, const Location& server) {
  double total = 0.0;
  double weighted = 0.0;
  for (const ClientLoad& l : mix.loads) {
    total += l.queries;
    weighted += l.queries *
                static_cast<double>(DiversityValue(l.location, server));
  }
  if (total <= 0.0) return kUniformReferenceDiversity;
  return weighted / total;
}

double NormalizedProximity(const ClientMix& mix, const Location& server) {
  if (mix.empty()) return 1.0;
  const double mean = MeanClientDiversity(mix, server);
  return (1.0 + kUniformReferenceDiversity) / (1.0 + mean);
}

}  // namespace skute
