#ifndef SKUTE_ECONOMY_BALANCE_H_
#define SKUTE_ECONOMY_BALANCE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace skute {

/// Parameters of the per-query utility u(pop, g) (Eq. 5). See DESIGN.md for
/// the proximity direction note: the default multiplies by proximity (the
/// prose semantics); the flag switches to the literal "divided by g" text.
struct UtilityParams {
  /// Monetary value per served query at proximity 1 (kappa).
  double value_per_query = 0.01;
  /// Ablation switch: divide by g instead of multiplying (literal Eq. 5
  /// text). Off by default.
  bool divide_by_proximity = false;
};

/// Utility earned by a vnode that served `queries` at proximity `g`.
double QueryUtility(uint64_t queries, double proximity,
                    const UtilityParams& params);

/// \brief Sliding window over a vnode's last `f` balances (Eq. 5 history).
///
/// Section II-C triggers migrate-or-suicide after `f` consecutive negative
/// balances and considers replication after `f` consecutive positive ones.
/// The window resets whenever the vnode executes an action, so a fresh
/// placement gets a full observation period before the next move.
class BalanceTracker {
 public:
  explicit BalanceTracker(int window) : window_(window < 1 ? 1 : window) {}

  /// Records the balance of a completed epoch.
  void Record(double balance);

  /// True when the last `window` records exist and are all strictly
  /// negative.
  bool NegativeStreak() const;

  /// True when the last `window` records exist and are all strictly
  /// positive.
  bool PositiveStreak() const;

  /// Clears the history (called after replicate/migrate decisions).
  void Reset();

  /// Most recent balance (0 when empty).
  double last() const { return history_.empty() ? 0.0 : history_.back(); }

  /// Lifetime net earnings of the vnode (not windowed).
  double lifetime_net() const { return lifetime_; }

  size_t count() const { return history_.size(); }
  int window() const { return window_; }

 private:
  int window_;
  std::deque<double> history_;
  double lifetime_ = 0.0;
};

}  // namespace skute

#endif  // SKUTE_ECONOMY_BALANCE_H_
