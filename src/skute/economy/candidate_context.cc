#include "skute/economy/candidate_context.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "skute/common/hash.h"
#include "skute/topology/location.h"

namespace skute {

namespace {

/// Slack for the prune bound: the bound algebra is exact in real
/// arithmetic; this margin absorbs the handful of ulps the floating-
/// point evaluation of score and bound can each round by. ~1e-16
/// relative error would suffice — 1e-9 keeps a huge safety factor at
/// the cost of a few extra frontier candidates per call.
constexpr double kBoundSlack = 1e-9;

}  // namespace

void CandidateContext::Build(const Cluster& cluster,
                             const CandidateParams& params,
                             const std::vector<const ClientMix*>& mixes,
                             const IndexedRunner& run_indexed) {
  cluster_ = &cluster;
  params_ = params;
  server_count_ = cluster.size();

  // Candidate universe: every server that could pass Admissible for
  // *some* byte size. Offline and zero-capacity servers can never pass;
  // membership is frozen during the propose stage, so the set is exact.
  std::vector<ServerId> universe;
  universe.reserve(server_count_);
  for (ServerId id = 0; id < server_count_; ++id) {
    const Server* s = cluster.server(id);
    if (s == nullptr || !s->online()) continue;
    if (s->resources().storage_capacity == 0) continue;
    universe.push_back(id);
  }

  orders_.clear();
  orders_.resize(mixes.size());
  const Board& board = cluster.board();
  for (size_t m = 0; m < mixes.size(); ++m) {
    MixOrder& mo = orders_[m];
    mo.mix = mixes[m];
    mo.safe = true;
    const size_t n = universe.size();
    mo.gain.assign(n, 0.0);
    mo.key.assign(n, 0.0);
    mo.order = universe;

    // The per-(mix, server) proximity factor is the expensive part
    // (MeanClientDiversity walks every client load) — fan it out.
    const ClientMix* mix = mo.mix;
    auto compute = [&](size_t i) {
      const Server* s = cluster.server(universe[i]);
      const double g =
          mix == nullptr ? 1.0 : NormalizedProximity(*mix, s->location());
      // Left-associated exactly like ScoreCandidateForSet's
      //   diversity_weight * g * conf * diversity_sum
      // so gain * diversity_sum reproduces its partial products bit for
      // bit.
      const double gain =
          params.diversity_weight * g * s->economics().confidence;
      mo.gain[i] = gain;
      mo.key[i] = static_cast<double>(kMaxDiversity) * gain -
                  board.RentOf(universe[i]);
    };
    if (run_indexed) {
      run_indexed(n, compute);
    } else {
      for (size_t i = 0; i < n; ++i) compute(i);
    }

    for (size_t i = 0; i < n; ++i) {
      if (!(mo.gain[i] >= 0.0) || !std::isfinite(mo.gain[i])) {
        mo.safe = false;
        break;
      }
    }
    if (!mo.safe) continue;

    // Sort by descending key, id ascending on ties (determinism — the
    // scan order never affects the winner, only how early we stop).
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      if (mo.key[a] != mo.key[b]) return mo.key[a] > mo.key[b];
      return universe[a] < universe[b];
    });
    MixOrder sorted;
    sorted.mix = mo.mix;
    sorted.safe = true;
    sorted.order.reserve(n);
    sorted.gain.reserve(n);
    sorted.key.reserve(n);
    for (size_t i : idx) {
      sorted.order.push_back(universe[i]);
      sorted.gain.push_back(mo.gain[i]);
      sorted.key.push_back(mo.key[i]);
    }
    sorted.suffix_max_gain.assign(n, 0.0);
    double running = 0.0;
    for (size_t i = n; i-- > 0;) {
      running = std::max(running, sorted.gain[i]);
      sorted.suffix_max_gain[i] = running;
    }
    orders_[m] = std::move(sorted);
  }
}

const CandidateContext::MixOrder* CandidateContext::FindOrder(
    const ClientMix* mix) const {
  for (const MixOrder& mo : orders_) {
    if (mo.mix == mix) return &mo;
  }
  return nullptr;
}

Result<CandidateChoice> CandidateContext::Select(
    const std::vector<ServerId>& replica_servers, uint64_t bytes_needed,
    const ClientMix* mix, const std::vector<ServerId>& exclude,
    const RentSurcharge* surcharge, uint64_t tie_break_salt) const {
  if (cluster_ == nullptr) {
    return Status::FailedPrecondition("CandidateContext not built");
  }
  counters_.select_calls.fetch_add(1, std::memory_order_relaxed);
  const MixOrder* mo = FindOrder(mix);
  if (cluster_->size() != server_count_ || mo == nullptr || !mo->safe) {
    counters_.full_scans.fetch_add(1, std::memory_order_relaxed);
    return SelectTargetForSet(*cluster_, replica_servers, bytes_needed, mix,
                              params_, exclude, surcharge, tie_break_salt);
  }

  const Cluster& cluster = *cluster_;
  const Board& board = cluster.board();

  // Small sorted skip set (the satellite fix SelectTargetForSet also
  // got): replica sets and exclusions are a handful of ids.
  std::vector<ServerId> skip = replica_servers;
  skip.insert(skip.end(), exclude.begin(), exclude.end());
  std::sort(skip.begin(), skip.end());

  // Live replica count caps the diversity sum at kMaxDiversity * live.
  size_t live = 0;
  for (ServerId id : replica_servers) {
    const Server* s = cluster.server(id);
    if (s != nullptr && s->online()) ++live;
  }
  const double live_over_one =
      static_cast<double>(kMaxDiversity) *
      static_cast<double>(live > 0 ? live - 1 : 0);

  // Negative surcharges (none today — penalties are positive) would
  // raise scores above the rent-based keys; fold the most negative one
  // into the bound so the overlay stays exact.
  double surcharge_floor = 0.0;
  if (surcharge != nullptr) {
    for (const auto& kv : *surcharge) {
      surcharge_floor = std::min(surcharge_floor, kv.second);
    }
  }

  CandidateChoice best;
  bool found = false;
  double best_rent = 0.0;
  uint64_t best_salted = 0;
  uint64_t scored = 0;

  for (size_t i = 0; i < mo->order.size(); ++i) {
    if (found) {
      const double bound =
          live_over_one * mo->suffix_max_gain[i] + mo->key[i] -
          surcharge_floor;
      const double slack = kBoundSlack * (1.0 + std::fabs(best.score));
      if (bound + slack < best.score) break;  // NaN-safe: false on NaN
    }
    const ServerId id = mo->order[i];
    const Server* s = cluster.server(id);
    if (!CandidateAdmissible(*s, bytes_needed, params_)) continue;
    if (std::binary_search(skip.begin(), skip.end(), id)) continue;

    ++scored;
    // Exactly ScoreCandidateForSet: diversity summed in replica order,
    // offline/unknown replicas contributing nothing.
    double diversity_sum = 0.0;
    for (ServerId rid : replica_servers) {
      const Server* rs = cluster.server(rid);
      if (rs == nullptr || !rs->online()) continue;
      diversity_sum += static_cast<double>(
          DiversityValue(rs->location(), s->location()));
    }
    const double rent = board.RentOf(id) + SurchargeOf(surcharge, id);
    const double score = mo->gain[i] * diversity_sum - rent;

    const uint64_t salted = Mix64(id ^ tie_break_salt);
    bool better = false;
    if (!found || score > best.score) {
      better = true;
    } else if (score == best.score &&
               (rent < best_rent ||
                (rent == best_rent && salted < best_salted))) {
      better = true;
    }
    if (better) {
      best.server = id;
      best.score = score;
      best_rent = rent;
      best_salted = salted;
      found = true;
    }
  }
  counters_.candidates_scored.fetch_add(scored, std::memory_order_relaxed);

  if (!found) {
    return Status::NotFound("no feasible replica target");
  }
  return best;
}

}  // namespace skute
