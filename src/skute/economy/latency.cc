#include "skute/economy/latency.h"

#include "skute/topology/location.h"

namespace skute {

double EstimateRttMs(uint8_t diversity) {
  // The ladder is keyed to the exact diversity values the 6-bit mask can
  // produce; values in between (query-weighted means) interpolate
  // linearly between the neighbouring rungs.
  struct Rung {
    double diversity;
    double rtt_ms;
  };
  static constexpr Rung kLadder[] = {
      {0.0, 0.1},  {1.0, 0.3},  {3.0, 0.5},  {7.0, 1.0},
      {15.0, 12.0}, {31.0, 40.0}, {63.0, 150.0},
  };
  const double d = static_cast<double>(diversity > 63 ? 63 : diversity);
  for (size_t i = 1; i < sizeof(kLadder) / sizeof(kLadder[0]); ++i) {
    if (d <= kLadder[i].diversity) {
      const Rung& lo = kLadder[i - 1];
      const Rung& hi = kLadder[i];
      const double t = (d - lo.diversity) / (hi.diversity - lo.diversity);
      return lo.rtt_ms + t * (hi.rtt_ms - lo.rtt_ms);
    }
  }
  return 150.0;
}

double ExpectedQueryRttMs(const ClientMix* mix, const Location& server) {
  if (mix == nullptr || mix->empty()) {
    return EstimateRttMs(
        static_cast<uint8_t>(kUniformReferenceDiversity));
  }
  double total = 0.0;
  double weighted = 0.0;
  for (const ClientLoad& l : mix->loads) {
    total += l.queries;
    weighted +=
        l.queries * EstimateRttMs(DiversityValue(l.location, server));
  }
  if (total <= 0.0) {
    return EstimateRttMs(
        static_cast<uint8_t>(kUniformReferenceDiversity));
  }
  return weighted / total;
}

}  // namespace skute
