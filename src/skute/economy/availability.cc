#include "skute/economy/availability.h"

#include "skute/topology/location.h"

namespace skute {

double AvailabilityModel::PairTerm(const Server& a, const Server& b) {
  return a.economics().confidence * b.economics().confidence *
         static_cast<double>(DiversityValue(a.location(), b.location()));
}

double AvailabilityModel::OfServers(
    const std::vector<const Server*>& servers) {
  double total = 0.0;
  for (size_t i = 0; i < servers.size(); ++i) {
    for (size_t j = i + 1; j < servers.size(); ++j) {
      total += PairTerm(*servers[i], *servers[j]);
    }
  }
  return total;
}

double AvailabilityModel::Of(const std::vector<const Server*>& servers) {
  std::vector<const Server*> online;
  online.reserve(servers.size());
  for (const Server* s : servers) {
    if (s != nullptr && s->online()) online.push_back(s);
  }
  return OfServers(online);
}

double AvailabilityModel::OfPartition(const Partition& partition,
                                      const Cluster& cluster) {
  return OfPartitionWithout(partition, cluster, kInvalidServer);
}

double AvailabilityModel::OfPartitionWithout(const Partition& partition,
                                             const Cluster& cluster,
                                             ServerId without) {
  std::vector<const Server*> servers;
  servers.reserve(partition.replica_count());
  for (const ReplicaInfo& r : partition.replicas()) {
    if (r.server == without) continue;
    const Server* s = cluster.server(r.server);
    if (s != nullptr && s->online()) servers.push_back(s);
  }
  return OfServers(servers);
}

double AvailabilityModel::OfPartitionWith(const Partition& partition,
                                          const Cluster& cluster,
                                          const Server& extra) {
  std::vector<const Server*> servers;
  servers.reserve(partition.replica_count() + 1);
  for (const ReplicaInfo& r : partition.replicas()) {
    const Server* s = cluster.server(r.server);
    if (s != nullptr && s->online()) servers.push_back(s);
  }
  servers.push_back(&extra);
  return OfServers(servers);
}

double AvailabilityModel::OfServerIds(const Cluster& cluster,
                                      const std::vector<ServerId>& ids) {
  std::vector<const Server*> servers;
  servers.reserve(ids.size());
  for (ServerId id : ids) {
    const Server* s = cluster.server(id);
    if (s != nullptr && s->online()) servers.push_back(s);
  }
  return OfServers(servers);
}

double AvailabilityModel::OfServerIdsWith(const Cluster& cluster,
                                          const std::vector<ServerId>& ids,
                                          ServerId extra) {
  std::vector<ServerId> with = ids;
  with.push_back(extra);
  return OfServerIds(cluster, with);
}

double AvailabilityModel::MaxForReplicas(int k, double confidence) {
  if (k < 2) return 0.0;
  const double pairs = static_cast<double>(k) * (k - 1) / 2.0;
  return pairs * static_cast<double>(kMaxDiversity) * confidence *
         confidence;
}

double AvailabilityModel::ThresholdForReplicas(int k, double confidence,
                                               double margin) {
  if (k < 2) k = 2;
  const double prev_pairs = static_cast<double>(k - 1) * (k - 2) / 2.0;
  return static_cast<double>(kMaxDiversity) * confidence * confidence *
         (prev_pairs + margin);
}

}  // namespace skute
