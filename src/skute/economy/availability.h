#ifndef SKUTE_ECONOMY_AVAILABILITY_H_
#define SKUTE_ECONOMY_AVAILABILITY_H_

#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/ring/partition.h"

namespace skute {

/// \brief Equation 2 of the paper: the availability proxy of a partition is
/// the confidence-weighted pairwise geographic diversity of the servers
/// hosting its replicas:
///
///   avail_i = sum_{a < b} conf_a * conf_b * diversity(s_a, s_b)
///
/// A single replica scores 0 (no pair), identical placement scores 0, and
/// k replicas on k different continents score C(k,2) * 63 * conf^2.
class AvailabilityModel {
 public:
  /// One pair's contribution: conf_a * conf_b * diversity(loc_a, loc_b).
  static double PairTerm(const Server& a, const Server& b);

  /// Eq. 2 over an explicit server set. Offline servers contribute nothing
  /// (their replicas are gone).
  static double Of(const std::vector<const Server*>& servers);

  /// Eq. 2 for a partition's current replica set, resolved via `cluster`.
  /// Replicas on offline/unknown servers are skipped.
  static double OfPartition(const Partition& partition,
                            const Cluster& cluster);

  /// Eq. 2 for the partition's replica set with the replica on
  /// `without` removed — the suicide check of Section II-C.
  static double OfPartitionWithout(const Partition& partition,
                                   const Cluster& cluster, ServerId without);

  /// Eq. 2 for the replica set with a replica added on `extra`.
  static double OfPartitionWith(const Partition& partition,
                                const Cluster& cluster, const Server& extra);

  /// Eq. 2 over an explicit server-id set (offline/unknown ids skipped).
  static double OfServerIds(const Cluster& cluster,
                            const std::vector<ServerId>& ids);

  /// Eq. 2 over `ids` plus one extra server id.
  static double OfServerIdsWith(const Cluster& cluster,
                                const std::vector<ServerId>& ids,
                                ServerId extra);

  /// Best achievable Eq. 2 value with `k` replicas of confidence
  /// `confidence` (pairwise different continents): C(k,2) * 63 * conf^2.
  static double MaxForReplicas(int k, double confidence);

  /// \brief SLA threshold that *requires* k replicas (see DESIGN.md):
  ///   th(k) = 63 * conf^2 * (C(k-1,2) + margin),  margin in (0, 1].
  ///
  /// Even k-1 perfectly dispersed replicas stay below th, while k replicas
  /// reach it with reasonable dispersion. Requires k >= 2 (a threshold of
  /// 0 would be satisfied by one replica).
  static double ThresholdForReplicas(int k, double confidence,
                                     double margin = 0.5);

 private:
  static double OfServers(const std::vector<const Server*>& servers);
};

}  // namespace skute

#endif  // SKUTE_ECONOMY_AVAILABILITY_H_
