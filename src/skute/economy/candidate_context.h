#ifndef SKUTE_ECONOMY_CANDIDATE_CONTEXT_H_
#define SKUTE_ECONOMY_CANDIDATE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/result.h"
#include "skute/economy/candidate.h"
#include "skute/economy/proximity.h"

namespace skute {

/// Fans fn(i) for every i in [0, count) over a worker pool; an empty
/// function means "run inline". The epoch pipeline passes its
/// EpochContext::RunIndexed so per-epoch prepare work parallelizes with
/// the same determinism contract as the stages themselves.
using IndexedRunner =
    std::function<void(size_t count, const std::function<void(size_t)>& fn)>;

/// \brief Per-epoch snapshot of everything Eq. 3's candidate scan reads
/// that does not depend on the partition being placed.
///
/// `SelectTargetForSet` rescans every server per call, recomputing the
/// proximity factor g, the confidence and the board rent from scratch —
/// but within one epoch all of these are fixed: prices publish once at
/// BeginEpoch, and membership/locations never change during the propose
/// stage. Build() computes, once per epoch and per distinct client mix,
/// the per-server gain
///
///   gain_j = diversity_weight * g_j * conf_j
///
/// (the exact left-associated partial product of the Eq. 3 score, so
/// `gain_j * diversity_sum - rent_j` is bit-for-bit the original
/// expression) and sorts candidates by the single-replica score bound
///
///   key_j = kMaxDiversity * gain_j - rent_j.
///
/// Select() then walks that order and stops as soon as no remaining
/// candidate's upper bound can beat the incumbent: with L live replicas
/// the diversity sum is at most kMaxDiversity * L, so
///
///   score_j <= kMaxDiversity * max(L-1, 0) * max_gain(j..) + key_j
///              - min(0, min surcharge)
///
/// bounds every candidate at or after position j. The incumbent
/// comparison uses the exact total order of SelectTargetForSet (score,
/// then rent, then salted id — strict, since Mix64 is bijective), so the
/// winner is order-independent and the pruned scan returns the identical
/// (server, score) pair. The bound check carries a relative slack margin
/// many orders of magnitude above double rounding error, so floating-
/// point rounding can never prune the true winner — the cost is scanning
/// a handful of extra frontier candidates.
///
/// The sparse per-shard RentSurcharge overlay and the admissibility
/// check against `bytes_needed` are evaluated exactly per call (rents
/// and storage are read live; both are constant during the propose
/// stage). Anything the snapshot cannot prove exact — an unknown mix, a
/// negative/non-finite gain, a membership count mismatch — falls back to
/// the full SelectTargetForSet scan, so Select() is *always* exact.
class CandidateContext {
 public:
  /// Cumulative scan counters (relaxed atomics: totals are sums over
  /// per-shard work that is identical for any thread count, so the
  /// values are deterministic). Never reset by Build(), so they count
  /// across the context's whole lifetime.
  struct Counters {
    std::atomic<uint64_t> select_calls{0};
    std::atomic<uint64_t> candidates_scored{0};
    std::atomic<uint64_t> full_scans{0};
  };

  CandidateContext() = default;
  CandidateContext(const CandidateContext&) = delete;
  CandidateContext& operator=(const CandidateContext&) = delete;

  /// Builds the epoch snapshot over `cluster` for the given distinct
  /// client mixes (include nullptr for the uniform mix — callers pass
  /// every RingPolicy::mix they will select against). The borrowed
  /// cluster and mix pointers must stay valid and unmodified until the
  /// next Build(). `run_indexed` fans the per-(mix, server) proximity
  /// work out; pass {} to build inline.
  void Build(const Cluster& cluster, const CandidateParams& params,
             const std::vector<const ClientMix*>& mixes,
             const IndexedRunner& run_indexed = {});

  /// Exact drop-in for SelectTargetForSet over the Build()-time cluster:
  /// same winner, same score, bit for bit (see class comment).
  Result<CandidateChoice> Select(const std::vector<ServerId>& replica_servers,
                                 uint64_t bytes_needed, const ClientMix* mix,
                                 const std::vector<ServerId>& exclude,
                                 const RentSurcharge* surcharge,
                                 uint64_t tie_break_salt) const;

  bool ready() const { return cluster_ != nullptr; }
  const Counters& counters() const { return counters_; }

 private:
  /// One candidate ordering: the servers that can pass admission
  /// (online, capacity > 0), sorted by descending key (id ascending on
  /// ties), with the suffix-max gain for the Select() bound.
  struct MixOrder {
    const ClientMix* mix = nullptr;
    std::vector<ServerId> order;
    std::vector<double> gain;             // aligned with `order`
    std::vector<double> key;              // aligned with `order`
    std::vector<double> suffix_max_gain;  // max gain over order[i..]
    /// False when some gain is negative or non-finite — the bound
    /// algebra needs gain >= 0, so Select() falls back to a full scan.
    bool safe = true;
  };

  const MixOrder* FindOrder(const ClientMix* mix) const;

  const Cluster* cluster_ = nullptr;
  CandidateParams params_;
  size_t server_count_ = 0;
  std::vector<MixOrder> orders_;
  mutable Counters counters_;
};

}  // namespace skute

#endif  // SKUTE_ECONOMY_CANDIDATE_CONTEXT_H_
