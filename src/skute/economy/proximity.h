#ifndef SKUTE_ECONOMY_PROXIMITY_H_
#define SKUTE_ECONOMY_PROXIMITY_H_

#include <vector>

#include "skute/topology/location.h"

namespace skute {

/// One client population: where queries come from and how many.
struct ClientLoad {
  Location location;
  double queries = 0.0;
};

/// \brief The geographic distribution G of query clients for a partition
/// (Section II-B). An empty mix means "no geographic information" and is
/// treated as perfectly uniform (proximity 1 everywhere), which is the
/// paper's simulation default.
struct ClientMix {
  std::vector<ClientLoad> loads;

  bool empty() const { return loads.empty(); }
  double TotalQueries() const;
};

/// \brief Literal Equation 4:
///   g_j = (sum_l q_l) / (1 + sum_l q_l * diversity(l, s_j)).
/// Scale-dependent in the raw query counts; exposed for tests and for the
/// fidelity ablation.
double RawEq4Proximity(const ClientMix& mix, const Location& server);

/// Query-weighted mean client->server diversity, in [0, 63].
double MeanClientDiversity(const ClientMix& mix, const Location& server);

/// \brief Normalized proximity g, used as the preference weight g_j of
/// Eq. 3 and in the utility u(pop, g):
///
///   g(j) = (1 + D_ref) / (1 + meanDiversity(mix, s_j))
///
/// where D_ref is the expected client->server diversity of a uniform
/// global mix (=kUniformReferenceDiversity). Under a uniform mix g is ~1
/// for every server — exactly the paper's simulation assumption ("g_j is 1
/// for any server j") — and rises toward (1 + D_ref) as the server moves
/// next to the clients. An empty mix returns exactly 1.
double NormalizedProximity(const ClientMix& mix, const Location& server);

/// Reference diversity of the uniform-global-clients case. With the
/// paper's grid most random location pairs land on different continents,
/// so the reference sits near (but below) 63.
inline constexpr double kUniformReferenceDiversity = 55.0;

}  // namespace skute

#endif  // SKUTE_ECONOMY_PROXIMITY_H_
