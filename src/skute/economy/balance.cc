#include "skute/economy/balance.h"

namespace skute {

double QueryUtility(uint64_t queries, double proximity,
                    const UtilityParams& params) {
  const double base =
      params.value_per_query * static_cast<double>(queries);
  if (params.divide_by_proximity) {
    return proximity > 0.0 ? base / proximity : base;
  }
  return base * proximity;
}

void BalanceTracker::Record(double balance) {
  history_.push_back(balance);
  lifetime_ += balance;
  while (history_.size() > static_cast<size_t>(window_)) {
    history_.pop_front();
  }
}

bool BalanceTracker::NegativeStreak() const {
  if (history_.size() < static_cast<size_t>(window_)) return false;
  for (double b : history_) {
    if (b >= 0.0) return false;
  }
  return true;
}

bool BalanceTracker::PositiveStreak() const {
  if (history_.size() < static_cast<size_t>(window_)) return false;
  for (double b : history_) {
    if (b <= 0.0) return false;
  }
  return true;
}

void BalanceTracker::Reset() { history_.clear(); }

}  // namespace skute
