#ifndef SKUTE_ECONOMY_CANDIDATE_H_
#define SKUTE_ECONOMY_CANDIDATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/result.h"
#include "skute/economy/proximity.h"
#include "skute/ring/partition.h"

namespace skute {

/// Tunables of the Eq. 3 candidate scan.
struct CandidateParams {
  /// Scales the diversity term against the rent term. The defaults put
  /// per-epoch rents in the 0.1..2 range while pairwise diversity sums
  /// reach into the hundreds, so with weight 1.0 availability dominates and
  /// rent breaks ties among equally diverse candidates — the paper's
  /// "availability is increased as much as possible at the minimum cost".
  double diversity_weight = 1.0;
  /// Admission control: a candidate is infeasible when accepting the
  /// bytes would push its storage utilization above this fraction.
  /// Keeps placement from cramming servers to 100% and leaves headroom
  /// for organic growth of already-hosted partitions (Fig. 5 depends on
  /// it: insert failures must not appear until the *cluster* is nearly
  /// full, not one unlucky server).
  double max_target_storage_utilization = 0.95;
};

/// Per-epoch surcharge on candidate rents, keyed by server. The decision
/// passes use it to account for placements they have already proposed in
/// the same epoch before the board reprices: without it, every agent sees
/// identical stale prices and piles onto the one cheapest server (the
/// thundering-herd the paper's serialized server-side admission would
/// absorb).
using RentSurcharge = std::unordered_map<ServerId, double>;

/// Outcome of the Eq. 3 scan: the winning server and its score.
struct CandidateChoice {
  ServerId server = kInvalidServer;
  double score = 0.0;
};

/// Surcharge on `id`'s rent this epoch; 0 when absent or no overlay.
double SurchargeOf(const RentSurcharge* surcharge, ServerId id);

/// Admission check of the Eq. 3 scan: online, enough free storage, and
/// the post-placement utilization stays under the pressure cap.
bool CandidateAdmissible(const Server& server, uint64_t bytes_needed,
                         const CandidateParams& params);

/// \brief Scores one candidate server against an explicit replica set (the
/// inner expression of Eq. 3):
///
///   g_j * conf_j * sum_k diversity(s_k, s_j) - c_j
///
/// Servers in `replica_servers` that are offline/unknown contribute no
/// diversity (their replicas are effectively gone). `mix` may be nullptr
/// (uniform clients, g = 1). Rent comes from the cluster's board.
double ScoreCandidateForSet(const Cluster& cluster,
                            const std::vector<ServerId>& replica_servers,
                            const Server& candidate, const ClientMix* mix,
                            const CandidateParams& params,
                            const RentSurcharge* surcharge = nullptr);

/// \brief Equation 3: chooses the feasible server maximizing
/// ScoreCandidateForSet. Feasible = online, not already in
/// `replica_servers`, not in `exclude`, and with at least `bytes_needed`
/// free storage (plus the utilization cap).
///
/// Ties break toward the cheaper rent, then by a salted hash of the
/// server id. The salt (callers pass the partition id) gives every
/// partition its own preference order among *equally priced* servers;
/// without it, all partitions repaired in the same epoch would choose
/// near-identical replica sets, and one multi-server failure would then
/// wipe correlated groups of partitions (observed: ~10x the independent
/// loss rate in the Fig. 3 scenario).
///
/// Returns NotFound when no feasible candidate exists.
Result<CandidateChoice> SelectTargetForSet(
    const Cluster& cluster, const std::vector<ServerId>& replica_servers,
    uint64_t bytes_needed, const ClientMix* mix,
    const CandidateParams& params,
    const std::vector<ServerId>& exclude = {},
    const RentSurcharge* surcharge = nullptr,
    uint64_t tie_break_salt = 0);

/// Convenience wrapper: replica set taken from `partition`, optionally
/// pretending the replica on `moving_from` has already left (migration).
Result<CandidateChoice> SelectReplicaTarget(
    const Cluster& cluster, const Partition& partition,
    const ClientMix* mix, const CandidateParams& params,
    const std::vector<ServerId>& exclude = {},
    ServerId moving_from = kInvalidServer);

/// The replica servers of a partition as a plain id vector, minus
/// `moving_from` when given.
std::vector<ServerId> ReplicaServerSet(const Partition& partition,
                                       ServerId moving_from = kInvalidServer);

}  // namespace skute

#endif  // SKUTE_ECONOMY_CANDIDATE_H_
