#ifndef SKUTE_COMMON_CSV_H_
#define SKUTE_COMMON_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace skute {

/// \brief Minimal CSV emitter for the benchmark harnesses: every figure
/// bench streams its series as CSV so plots can be regenerated offline.
///
/// Values are written with enough precision to round-trip doubles that
/// matter at simulation scale (6 significant digits). Fields containing
/// commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (not owned, must outlive this).
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Emits the header row. Call once, before any Row().
  void Header(const std::vector<std::string>& columns);

  /// Row-building API: Field() appends one cell, EndRow() terminates it.
  CsvWriter& Field(std::string_view v);
  CsvWriter& Field(const char* v) { return Field(std::string_view(v)); }
  CsvWriter& Field(double v);
  CsvWriter& Field(uint64_t v);
  CsvWriter& Field(int64_t v);
  CsvWriter& Field(int v) { return Field(static_cast<int64_t>(v)); }
  void EndRow();

  size_t rows_written() const { return rows_; }

 private:
  void Separate();

  std::ostream* out_;
  bool row_open_ = false;
  size_t rows_ = 0;
};

}  // namespace skute

#endif  // SKUTE_COMMON_CSV_H_
