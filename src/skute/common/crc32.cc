#include "skute/common/crc32.h"

#include <array>

namespace skute {

namespace {

constexpr uint32_t kPolynomial = 0x82f63b78u;  // reflected CRC-32C

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

uint32_t MaskCrc(uint32_t crc) {
  // Rotate right by 15 bits and add a constant (LevelDB's scheme).
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace skute
