#include "skute/common/stats.h"

#include <algorithm>
#include <cmath>

namespace skute {

void RunningStat::Add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double CoefficientOfVariation(const std::vector<double>& values) {
  RunningStat s;
  for (double v : values) s.Add(v);
  if (s.count() == 0 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum = 0.0;      // sum of rank-weighted values
  double total = 0.0;
  const size_t n = values.size();
  for (size_t i = 0; i < n; ++i) {
    cum += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  const double nd = static_cast<double>(n);
  return (2.0 * cum) / (nd * total) - (nd + 1.0) / nd;
}

double PeakToAverage(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double peak = values.front();
  for (double v : values) {
    sum += v;
    peak = std::max(peak, v);
  }
  if (sum <= 0.0) return 0.0;
  return peak * static_cast<double>(values.size()) / sum;
}

}  // namespace skute
