#ifndef SKUTE_COMMON_STATUS_H_
#define SKUTE_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace skute {

/// \brief RocksDB-style operation outcome. The library never throws; every
/// fallible call returns a Status (or a Result<T>, see result.h).
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message.
class Status {
 public:
  /// Error category. kOk means success.
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kResourceExhausted,   ///< out of storage/bandwidth/capacity
    kUnavailable,         ///< server offline / availability violated
    kFailedPrecondition,  ///< state does not admit the operation
    kOutOfRange,
    kAborted,   ///< action abandoned after re-validation
    kInternal,  ///< invariant violation: a bug in this library
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Short name of the code, e.g. "NotFound".
  static std::string_view CodeName(Code code);

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

}  // namespace skute

#endif  // SKUTE_COMMON_STATUS_H_
