#include "skute/common/logging.h"

#include <cstdio>

namespace skute {

namespace {

LogLevel g_level = LogLevel::kWarning;
std::string* g_sink = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logging::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logging::level() { return g_level; }

void Logging::SetSink(std::string* sink) { g_sink = sink; }

void Logging::Write(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  if (g_sink != nullptr) {
    g_sink->append(LevelName(level));
    g_sink->append(": ");
    g_sink->append(msg);
    g_sink->push_back('\n');
    return;
  }
  std::fprintf(stderr, "[skute %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace skute
