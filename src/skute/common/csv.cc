#include "skute/common/csv.h"

#include <cstdio>

namespace skute {

void CsvWriter::Header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) Field(c);
  EndRow();
}

void CsvWriter::Separate() {
  if (row_open_) {
    *out_ << ',';
  } else {
    row_open_ = true;
  }
}

CsvWriter& CsvWriter::Field(std::string_view v) {
  Separate();
  const bool needs_quotes =
      v.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) {
    *out_ << v;
    return *this;
  }
  *out_ << '"';
  for (char c : v) {
    if (c == '"') *out_ << '"';
    *out_ << c;
  }
  *out_ << '"';
  return *this;
}

CsvWriter& CsvWriter::Field(double v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::Field(uint64_t v) {
  Separate();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::Field(int64_t v) {
  Separate();
  *out_ << v;
  return *this;
}

void CsvWriter::EndRow() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace skute
