#ifndef SKUTE_COMMON_STATS_H_
#define SKUTE_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace skute {

/// \brief Constant-memory running statistics (Welford's algorithm).
class RunningStat {
 public:
  void Add(double v);
  /// Merges another accumulator (Chan et al. parallel formula).
  void Merge(const RunningStat& other);

  uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance.
  double variance() const { return n_ == 0 ? 0.0 : m2_ / double(n_); }
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  void Clear() { *this = RunningStat(); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Coefficient of variation (stddev/mean) of a sample; the paper's
/// load-balance figures are judged by how small this stays. Returns 0 when
/// the mean is 0.
double CoefficientOfVariation(const std::vector<double>& values);

/// \brief Gini coefficient of a non-negative sample in [0, 1]; 0 = perfectly
/// even, 1 = maximally concentrated. Secondary balance metric for the
/// figure shape checks.
double GiniCoefficient(std::vector<double> values);

/// \brief max/mean ratio ("peak-to-average"); 1.0 = perfectly balanced.
/// Returns 0 when the sample is empty or sums to 0.
double PeakToAverage(const std::vector<double>& values);

}  // namespace skute

#endif  // SKUTE_COMMON_STATS_H_
