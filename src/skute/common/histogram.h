#ifndef SKUTE_COMMON_HISTOGRAM_H_
#define SKUTE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skute {

/// \brief Reservoir-free exact histogram over double samples.
///
/// Stores all samples (the simulations produce at most a few hundred
/// thousand per series) and computes order statistics exactly. Percentile
/// queries sort lazily and cache the sorted order until the next Add.
class Histogram {
 public:
  /// Adds one sample.
  void Add(double v);

  /// Merges all samples of `other` into this histogram.
  void Merge(const Histogram& other);

  /// Number of samples.
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Population standard deviation (0 for fewer than 2 samples).
  double stddev() const;
  double sum() const { return sum_; }

  /// Exact p-th percentile, p in [0, 100]; nearest-rank method.
  /// Returns 0 for an empty histogram.
  double Percentile(double p) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." summary line.
  std::string ToString() const;

  /// Removes all samples.
  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace skute

#endif  // SKUTE_COMMON_HISTOGRAM_H_
