#ifndef SKUTE_COMMON_LOGGING_H_
#define SKUTE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace skute {

/// Log severity; messages below the global threshold are discarded.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// \brief Process-wide logging configuration. The simulator defaults to
/// kWarning so that benchmark output stays machine-readable; tests and
/// examples may lower it.
class Logging {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();
  /// Routes log lines through `sink` instead of stderr (nullptr resets).
  /// The sink pointer must stay valid until reset.
  static void SetSink(std::string* sink);

  /// Emits one line (used by the SKUTE_LOG macro below).
  static void Write(LogLevel level, const std::string& msg);
};

/// \brief RAII line builder: streams into a buffer, emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logging::Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace skute

/// SKUTE_LOG(kInfo) << "epoch " << e << " done";
#define SKUTE_LOG(severity)                                        \
  if (::skute::LogLevel::severity < ::skute::Logging::level()) {   \
  } else                                                           \
    ::skute::LogMessage(::skute::LogLevel::severity)

#endif  // SKUTE_COMMON_LOGGING_H_
