#ifndef SKUTE_COMMON_HASH_H_
#define SKUTE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace skute {

/// \brief 64-bit hash of a byte string (xxHash64-style construction,
/// implemented from scratch; stable across platforms and library versions).
///
/// This is the hash that places keys on the consistent-hashing ring, so its
/// exact output sequence is part of the on-disk/on-ring contract and must
/// never change.
uint64_t Hash64(std::string_view data, uint64_t seed = 0);

/// \brief Bijective 64-bit finalizer (SplitMix64's mixer). Useful for
/// spreading sequential ids uniformly over the ring.
uint64_t Mix64(uint64_t x);

}  // namespace skute

#endif  // SKUTE_COMMON_HASH_H_
