#ifndef SKUTE_COMMON_CRC32_H_
#define SKUTE_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace skute {

/// \brief CRC-32C (Castagnoli, the RocksDB/LevelDB log checksum
/// polynomial), table-driven software implementation.
///
/// Guards every write-ahead-log record (see skute/storage/wal.h) against
/// torn writes and bit rot; stable across platforms.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

/// LevelDB-style masked CRC: storing a CRC of data that itself contains
/// CRCs is error-prone, so stored checksums are masked.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace skute

#endif  // SKUTE_COMMON_CRC32_H_
