#ifndef SKUTE_COMMON_RANDOM_H_
#define SKUTE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skute {

/// \brief SplitMix64: seeds other generators and provides a cheap,
/// high-quality 64-bit mixer (Steele et al., "Fast splittable PRNGs").
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Deterministic pseudo-random generator (xoshiro256**) with the
/// samplers the paper's workloads need (Poisson, Pareto, Zipf, Gaussian).
///
/// The library deliberately avoids std::*_distribution: their outputs are
/// implementation-defined, and reproducibility of simulation runs across
/// platforms is a hard requirement (see DESIGN.md). All samplers here are
/// specified algorithms with platform-independent behaviour.
///
/// Satisfies UniformRandomBitGenerator, so it can also drive std utilities
/// such as std::shuffle where determinism is not required.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four xoshiro words through SplitMix64 as recommended by the
  /// generator's authors; any seed (including 0) is valid.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return NextUint64(); }

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble();

  /// Uniform double in (0, 1] — never returns 0; safe for log().
  double NextDoubleOpen();

  /// Uniform integer in the inclusive range [lo, hi]; requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate); requires rate > 0.
  double Exponential(double rate);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Gaussian(double mean, double stddev);

  /// Poisson-distributed count with the given mean (>= 0).
  ///
  /// Uses Knuth's product method for small means and a rounded Gaussian
  /// approximation for mean >= 256 (relative error < 0.4% there, far below
  /// the noise floor of the simulations; keeps the draw O(1) even at the
  /// paper's Slashdot peak of 183000 queries/epoch).
  uint64_t Poisson(double mean);

  /// Pareto variate with minimum (scale) x_m > 0 and shape alpha > 0:
  /// X = x_m / U^(1/alpha). Mean is alpha*x_m/(alpha-1) for alpha > 1.
  double Pareto(double scale_xm, double shape_alpha);

  /// Pareto truncated to [x_m, cap] by resampling-free inversion.
  double BoundedPareto(double scale_xm, double shape_alpha, double cap);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0, by inversion on
  /// the exact CDF table-free approximation (rejection method of Devroye).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle driven by this generator (deterministic).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, i));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights
  /// (linear scan; use for small vectors or precompute a CDF for hot paths).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Forks an independent stream: deterministic function of this
  /// generator's current state and the label.
  Rng Fork(uint64_t label);

 private:
  uint64_t s_[4];
};

/// \brief Cumulative-distribution sampler for repeated weighted draws.
/// Build once in O(n), sample in O(log n).
class CdfSampler {
 public:
  /// Builds from non-negative weights; zero total weight is allowed (Sample
  /// then always returns 0 on a non-empty vector).
  explicit CdfSampler(const std::vector<double>& weights);

  /// Returns an index distributed proportionally to the weights.
  size_t Sample(Rng* rng) const;

  double total_weight() const { return total_; }
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace skute

#endif  // SKUTE_COMMON_RANDOM_H_
