#ifndef SKUTE_COMMON_TABLE_H_
#define SKUTE_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace skute {

/// \brief Right-padded ASCII table for human-readable bench summaries.
///
/// \code
///   AsciiTable t({"ring", "vnodes", "avail"});
///   t.AddRow({"0", "1600", "63.0"});
///   std::cout << t.ToString();
/// \endcode
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; missing trailing cells render empty, extra cells are an
  /// error caught in tests (row wider than header asserts in debug).
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule; every column padded to its widest cell.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

  /// Convenience number formatting for cells.
  static std::string Num(double v, int precision = 2);
  static std::string Num(uint64_t v);
  static std::string Num(int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skute

#endif  // SKUTE_COMMON_TABLE_H_
