#include "skute/common/random.h"

#include <algorithm>
#include <cmath>

namespace skute {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = hi - lo + 1;
  if (span == 0) return NextUint64();  // full 64-bit range
  // Debiased modulo (Lemire-style rejection on the tail).
  const uint64_t limit = (~0ull) - (~0ull) % span;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit && limit != 0);
  return lo + v % span;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  return -std::log(NextDoubleOpen()) / rate;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller without state: draws two uniforms per variate.
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 256.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Gaussian approximation for large means (see header).
  const double v = Gaussian(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(v));
}

double Rng::Pareto(double scale_xm, double shape_alpha) {
  return scale_xm / std::pow(NextDoubleOpen(), 1.0 / shape_alpha);
}

double Rng::BoundedPareto(double scale_xm, double shape_alpha, double cap) {
  if (cap <= scale_xm) return scale_xm;
  // Inverse CDF of the truncated Pareto: no rejection loop needed.
  const double la = std::pow(scale_xm, shape_alpha);
  const double ha = std::pow(cap, shape_alpha);
  const double u = NextDouble();
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / shape_alpha);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Devroye's rejection method for the Zipf(s) distribution on [1, n].
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  const double hn = h(nd + 0.5);
  const double h1 = h(1.5) - 1.0;
  for (;;) {
    const double u = h1 + NextDouble() * (hn - h1);
    double x;
    if (s == 1.0) {
      x = std::exp(u);
    } else {
      x = std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
    }
    x = std::clamp(x, 1.0, nd);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;  // 0-based rank
    }
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t label) {
  return Rng(NextUint64() ^ (label * 0x9e3779b97f4a7c15ull));
}

CdfSampler::CdfSampler(const std::vector<double>& weights) {
  cdf_.reserve(weights.size());
  for (double w : weights) {
    total_ += w > 0 ? w : 0.0;
    cdf_.push_back(total_);
  }
}

size_t CdfSampler::Sample(Rng* rng) const {
  if (cdf_.empty()) return 0;
  if (total_ <= 0.0) return 0;
  const double target = rng->NextDouble() * total_;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

}  // namespace skute
