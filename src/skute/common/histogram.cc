#include "skute/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace skute {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based.
  const size_t n = sorted_.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_[rank - 1];
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), mean(), Percentile(50), Percentile(95),
                Percentile(99), max());
  return std::string(buf);
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

}  // namespace skute
