#include "skute/common/status.h"

namespace skute {

std::string_view Status::CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kAborted:
      return "Aborted";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace skute
