#ifndef SKUTE_COMMON_RESULT_H_
#define SKUTE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "skute/common/status.h"

namespace skute {

/// \brief A Status or a value: the return type of fallible producers
/// (absl::StatusOr-style). Holds exactly one of {error Status, T}.
///
/// Usage:
/// \code
///   Result<ServerId> r = SelectTarget(...);
///   if (!r.ok()) return r.status();
///   ServerId id = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Constructing from an OK status is a
  /// programming error (there would be no value) and is remapped to
  /// kInternal.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate an error Status from an expression that yields Status.
#define SKUTE_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::skute::Status _skute_st = (expr);               \
    if (!_skute_st.ok()) return _skute_st;            \
  } while (false)

/// Evaluate an expression yielding Result<T>; on error, return its Status;
/// otherwise bind the value to `lhs` (declaration or assignable lvalue).
#define SKUTE_ASSIGN_OR_RETURN(lhs, expr)             \
  SKUTE_ASSIGN_OR_RETURN_IMPL_(                       \
      SKUTE_RESULT_CONCAT_(_skute_res, __LINE__), lhs, expr)

#define SKUTE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define SKUTE_RESULT_CONCAT_(a, b) SKUTE_RESULT_CONCAT_IMPL_(a, b)
#define SKUTE_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace skute

#endif  // SKUTE_COMMON_RESULT_H_
