#ifndef SKUTE_COMMON_UNITS_H_
#define SKUTE_COMMON_UNITS_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace skute {

/// Simulation time is slotted into epochs (Section II of the paper); an
/// epoch index is just a counter starting at 0.
using Epoch = int64_t;

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// "500KB"-style decimal units used by the paper's workload description.
inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;

/// Formats a byte count with a binary-unit suffix, e.g. "208.0 MiB".
inline std::string FormatBytes(uint64_t bytes) {
  const char* suffix = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= kTiB) {
    v /= static_cast<double>(kTiB);
    suffix = "TiB";
  } else if (bytes >= kGiB) {
    v /= static_cast<double>(kGiB);
    suffix = "GiB";
  } else if (bytes >= kMiB) {
    v /= static_cast<double>(kMiB);
    suffix = "MiB";
  } else if (bytes >= kKiB) {
    v /= static_cast<double>(kKiB);
    suffix = "KiB";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix);
  return std::string(buf);
}

}  // namespace skute

#endif  // SKUTE_COMMON_UNITS_H_
