#include "skute/common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace skute {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= header_.size());
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  emit_row(header_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string AsciiTable::Num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

std::string AsciiTable::Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string AsciiTable::Num(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return std::string(buf);
}

}  // namespace skute
