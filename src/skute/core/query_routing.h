#ifndef SKUTE_CORE_QUERY_ROUTING_H_
#define SKUTE_CORE_QUERY_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/core/comm_stats.h"
#include "skute/core/decision.h"
#include "skute/core/vnode.h"
#include "skute/economy/proximity.h"
#include "skute/ring/partition.h"

namespace skute {

/// \brief One epoch's aggregate query workload: partition -> requested
/// query count. Workload generators fill a batch without touching the
/// store; SkuteStore::RouteQueryBatch routes it in one sharded pass over
/// the engine's worker pool (the RouteStage).
class QueryBatch {
 public:
  /// Accumulates `count` queries against a partition (0 is a no-op).
  void Add(const Partition* partition, uint64_t count) {
    if (partition == nullptr || count == 0) return;
    counts_[partition] += count;
    total_ += count;
  }

  /// Requested queries for one partition (0 when absent).
  uint64_t CountFor(const Partition* partition) const {
    const auto it = counts_.find(partition);
    return it == counts_.end() ? 0 : it->second;
  }

  uint64_t total() const { return total_; }
  size_t partitions() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  void Clear() {
    counts_.clear();
    total_ = 0;
  }

 private:
  std::unordered_map<const Partition*, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// \brief Outcome of routing query traffic (one batch, or the whole
/// epoch when read through SkuteStore::last_route).
struct RouteResult {
  /// Queries the workload asked to route.
  uint64_t requested = 0;
  /// Subset that reached a live replica (served or dropped at the
  /// server's capacity — drops are counted per server, not here).
  uint64_t routed = 0;
  /// Subset that found no live replica at all.
  uint64_t lost = 0;
  /// Wall time spent in the route stage.
  double route_ms = 0.0;

  void Accumulate(const RouteResult& other) {
    requested += other.requested;
    routed += other.routed;
    lost += other.lost;
    route_ms += other.route_ms;
  }
};

/// One replica's share of a partition's queries, resolved to the live
/// server and its vnode agent during the (parallel) compute pass.
struct RouteShare {
  Server* server = nullptr;
  VirtualNode* vnode = nullptr;
  uint64_t share = 0;
};

/// \brief Shard-local routing accumulator. The compute pass
/// (ComputePartitionRoute) only appends here — it never touches store
/// state — so shards can run concurrently; ApplyRouteAccum merges the
/// accumulators serially in shard order, which keeps every counter and
/// the capacity-admission order identical for any thread count.
struct RouteAccum {
  uint64_t requested = 0;
  uint64_t lost = 0;
  uint64_t query_msgs = 0;
  std::vector<std::pair<PartitionId, uint64_t>> partition_queries;
  std::vector<std::pair<RingId, uint64_t>> ring_queries;
  std::vector<RouteShare> shares;
};

/// \brief Deterministic largest-remainder apportionment: splits `count`
/// into integer shares proportional to `weights`.
///
/// Each positive-weight entry receives floor(count * w / W); the rounding
/// remainder goes to the entries with the largest fractional parts
/// (ties broken by lowest index). Entries with weight <= 0 always receive
/// 0. Requires at least one positive weight; all-nonpositive weights
/// yield all-zero shares (callers fall back to uniform weights first).
std::vector<uint64_t> ApportionLargestRemainder(
    const std::vector<double>& weights, uint64_t count);

/// \brief Computes one partition's routing into `accum` without mutating
/// any store state (re-entrant: read-only over cluster/vnodes/partition,
/// writes only the accumulator). Shares are proximity-weighted
/// largest-remainder apportionments over the live replicas; zero-weight
/// replicas are skipped (uniform fallback when every live replica has
/// weight 0). Queries against a partition with no live replica are
/// recorded as lost — but still counted as requested traffic, matching
/// the historical accounting.
void ComputePartitionRoute(Cluster* cluster, VNodeRegistry* vnodes,
                           const Partition& partition, uint64_t count,
                           const ClientMix* mix, RouteAccum* accum);

/// \brief Applies one accumulator: capacity admission (ServeQueries) in
/// accumulator order plus the counter merges. Must run on one thread,
/// accumulators in shard order — that ordering IS the determinism
/// contract of the parallel query plane. Serial convenience path
/// (SkuteStore::RouteQueriesToPartition); batch traffic goes through
/// ApplyRouteAccumsBatched.
void ApplyRouteAccum(const RouteAccum& accum, PartitionStatsMap* stats,
                     std::vector<uint64_t>* ring_queries_epoch,
                     CommStats* comm_epoch, RouteResult* result);

/// \brief Applies a whole batch of shard accumulators with **batched
/// per-server capacity admission**: instead of one Server::ServeQueries
/// call per share entry, every server's shares are summed across all
/// accumulators and its capacity is debited once, with the grant handed
/// out greedily over the shares in (shard, share) order.
///
/// Greedy admission has the prefix property — serving shares one by one
/// and serving their sum then splitting the grant front-to-back debit the
/// same capacity and serve the same per-share counts — so every counter
/// (per-vnode routed/served, per-server served/dropped, stats, comm) is
/// bit-for-bit identical to the sequential ApplyRouteAccum loop, just
/// with one admission pass per server per batch. Must run on one thread,
/// accumulators in shard order.
void ApplyRouteAccumsBatched(const std::vector<RouteAccum>& accums,
                             PartitionStatsMap* stats,
                             std::vector<uint64_t>* ring_queries_epoch,
                             CommStats* comm_epoch, RouteResult* result);

}  // namespace skute

#endif  // SKUTE_CORE_QUERY_ROUTING_H_
