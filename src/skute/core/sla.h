#ifndef SKUTE_CORE_SLA_H_
#define SKUTE_CORE_SLA_H_

#include <string>

namespace skute {

/// \brief One availability service level: the minimum Eq. 2 availability
/// (`th` in the paper) a partition of this level must maintain.
///
/// Applications attach one ring per SLA level (Fig. 1 of the paper), so
/// different data items of the same tenant can have different guarantees.
struct SlaLevel {
  /// Minimum Eq. 2 availability (the paper's `th`).
  double min_availability = 0.0;
  /// The replica count this threshold was derived for (informational; the
  /// live replica count is whatever the economy needs to satisfy th).
  int replicas_hint = 0;
  /// Human-readable label for reports ("gold", "silver", ...).
  std::string name;

  /// \brief The paper's Section III-A levels: "each application offers one
  /// minimum availability level that is satisfied by 2, 3, 4 replicas
  /// respectively". Produces th(k) = 63 * conf^2 * (C(k-1,2) + margin) —
  /// see AvailabilityModel::ThresholdForReplicas.
  static SlaLevel ForReplicas(int k, double confidence,
                              double margin = 0.5);
};

}  // namespace skute

#endif  // SKUTE_CORE_SLA_H_
