#include "skute/core/vnode.h"

namespace skute {

VirtualNode* VNodeRegistry::Create(VNodeId id, PartitionId partition,
                                   RingId ring, ServerId server,
                                   Epoch epoch) {
  const auto [it, inserted] = nodes_.emplace(
      id, VirtualNode(id, partition, ring, server, epoch, balance_window_));
  (void)inserted;
  return &it->second;
}

VirtualNode* VNodeRegistry::Find(VNodeId id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const VirtualNode* VNodeRegistry::Find(VNodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Status VNodeRegistry::Remove(VNodeId id) {
  if (nodes_.erase(id) == 0) {
    return Status::NotFound("unknown vnode");
  }
  return Status::OK();
}

}  // namespace skute
