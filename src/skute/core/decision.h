#ifndef SKUTE_CORE_DECISION_H_
#define SKUTE_CORE_DECISION_H_

#include <unordered_map>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/core/vnode.h"
#include "skute/economy/balance.h"
#include "skute/economy/candidate.h"
#include "skute/economy/pricing.h"
#include "skute/ring/catalog.h"

namespace skute {

class CandidateContext;
class ProposalCache;

/// What a virtual-node agent decided to do at the end of an epoch
/// (Section II-C: replicate, migrate, suicide, or nothing).
enum class ActionType { kNone, kReplicate, kMigrate, kSuicide };

/// One proposed action. Proposals are generated against the board snapshot
/// and re-validated against live state when executed (see ActionExecutor).
struct Action {
  ActionType type = ActionType::kNone;
  PartitionId partition = kInvalidPartition;
  RingId ring = 0;
  /// Acting vnode: the migrating/suiciding replica, or the replication
  /// initiator (kInvalidVNode for repair replications initiated by the
  /// partition's primary when that vnode is gone).
  VNodeId vnode = kInvalidVNode;
  /// Replication source / migration origin.
  ServerId source = kInvalidServer;
  /// Replication / migration destination.
  ServerId target = kInvalidServer;
  /// Eq. 3 score of the chosen target (diagnostics).
  double score = 0.0;
  /// Why the action was proposed (static string, diagnostics).
  const char* reason = "";
};

/// Per-ring policy the decision passes evaluate against.
struct RingPolicy {
  /// Minimum Eq. 2 availability (the SLA's th).
  double min_availability = 0.0;
  /// Client geo-distribution of the ring's application; nullptr = uniform.
  const ClientMix* mix = nullptr;
};

/// Per-partition traffic snapshot for the epoch being closed.
struct PartitionEpochStats {
  uint64_t queries = 0;      // across all replicas
  uint64_t write_bytes = 0;  // inserted/updated bytes (consistency cost)
};
using PartitionStatsMap =
    std::unordered_map<PartitionId, PartitionEpochStats>;

/// Tunables of the Section II-C decision process.
struct DecisionParams {
  /// The paper's f: consecutive negative (positive) epochs before a vnode
  /// migrates/suicides (replicates).
  int balance_window = 4;
  CandidateParams candidate;
  UtilityParams utility;
  ConsistencyCostModel consistency;
  /// A migration target must be at least this much cheaper than the
  /// current server (hysteresis against rent-chasing churn). Must stay
  /// below the rent spread Eq. 1's alpha produces between a full and an
  /// average server, or storage-pressure migration stalls (see
  /// PricingParams::alpha).
  double migration_savings_threshold = 0.02;
  /// Repair may propose several replications per partition per epoch to
  /// recover from multi-replica losses quickly; bandwidth still throttles.
  int max_repair_steps_per_epoch = 4;
  /// Hard cap on replicas per partition; 0 = no explicit cap (server count
  /// and profitability cap it naturally).
  size_t max_replicas_per_partition = 0;
  /// The paper's stabilization rule: floor a vnode's utility at the
  /// cluster-wide minimum rent so unpopular vnodes stop migrating once
  /// they reach the cheapest server. Off only for the ablation bench.
  bool utility_floor = true;
  /// Rent surcharge added per placement already proposed onto a target
  /// within the same epoch (see RentSurcharge in candidate.h). Models the
  /// serialized admission a real target server would impose; without it,
  /// stale identical board prices send every agent to the same server.
  double pending_placement_penalty = 0.25;
  /// Decision-plane acceleration (both layers are bit-for-bit identical
  /// to the uncached path — the flags exist for the equivalence tests
  /// and the ablation bench, not as behavior knobs).
  /// Per-epoch CandidateContext for Eq. 3 target selection.
  bool use_candidate_context = true;
  /// Cross-epoch ProposalCache: availability reuse + dirty-partition
  /// skip in the economic pass.
  bool use_proposal_cache = true;
};

/// \brief Optional per-epoch acceleration state threaded through the
/// decision passes. All members may be null; a null member (or a null
/// context pointer, the default everywhere) selects the original
/// full-recompute path. EconomicPolicy assembles one per epoch in its
/// BeginProposalEpoch prepare step.
struct ProposeContext {
  /// Per-epoch Eq. 3 scoring snapshot (exact; see candidate_context.h).
  const CandidateContext* candidates = nullptr;
  /// Cross-epoch availability/dirty-partition cache (exact; see
  /// decision_cache.h).
  ProposalCache* avail_cache = nullptr;
  /// Per-partition streak flags from RecordBalancesStage (kStreak* bits,
  /// indexed by PartitionId); entries without kStreakFlagsValid fall
  /// back to the inline vnode scan.
  const std::vector<uint8_t>* streak_flags = nullptr;
};

/// \brief Generates the epoch's proposed actions. Stateless except for
/// parameters: both passes read the cluster/catalog and write nothing.
class DecisionEngine {
 public:
  explicit DecisionEngine(const DecisionParams& params) : params_(params) {}

  const DecisionParams& params() const { return params_; }

  /// \brief Availability repair (Section II-C first step): for every
  /// partition whose Eq. 2 availability is below its ring's th, propose
  /// replications (Eq. 3 targets) until the *hypothetical* availability
  /// reaches th or max_repair_steps_per_epoch is hit.
  ///
  /// Initiated once per partition (by its primary replica — the live
  /// replica with the lowest server id) rather than by every replica, to
  /// model a deterministic leader and avoid a thundering herd.
  std::vector<Action> RepairPass(
      const Cluster& cluster, const RingCatalog& catalog,
      const std::vector<RingPolicy>& policies,
      RentSurcharge* surcharge = nullptr,
      const ProposeContext* pctx = nullptr) const;

  /// \brief Economic decisions (Section II-C second step), at most one
  /// action per partition per epoch:
  ///  - a vnode with `f` negative balances suicides if the partition stays
  ///    at/above th without it, else migrates to a cheaper server;
  ///  - otherwise, if some vnode has `f` positive balances and the
  ///    partition's popularity covers the new rent plus consistency cost,
  ///    the partition replicates (Eq. 3 target).
  std::vector<Action> EconomicPass(
      const Cluster& cluster, const RingCatalog& catalog,
      const VNodeRegistry& vnodes,
      const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats,
      RentSurcharge* surcharge = nullptr,
      const ProposeContext* pctx = nullptr) const;

  /// Both passes with a shared per-epoch rent surcharge (what
  /// EconomicPolicy runs every epoch).
  std::vector<Action> ProposeAll(const Cluster& cluster,
                                 const RingCatalog& catalog,
                                 const VNodeRegistry& vnodes,
                                 const std::vector<RingPolicy>& policies,
                                 const PartitionStatsMap& stats,
                                 const ProposeContext* pctx = nullptr) const;

  /// \brief Both passes restricted to an explicit partition list — one
  /// decision-plane shard — with its own rent-surcharge ledger.
  ///
  /// Called concurrently from the epoch pipeline's worker pool, one call
  /// per shard; everything it touches is read-only shared state plus
  /// shard-local accumulators, so calls are thread-safe. A shard only
  /// surcharges its *own* proposals: cross-shard pile-ups onto one cheap
  /// server are possible within an epoch (as they are between real
  /// uncoordinated agents) and are arbitrated by the executor's
  /// storage/bandwidth re-validation. With a single shard this is exactly
  /// ProposeAll.
  std::vector<Action> ProposeForPartitions(
      const Cluster& cluster,
      const std::vector<const Partition*>& partitions,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats,
      const ProposeContext* pctx = nullptr) const;

 private:
  /// Repair leg for one partition (appends 0..max_repair_steps actions).
  void ProposeRepair(const Cluster& cluster, const Partition& partition,
                     const std::vector<RingPolicy>& policies,
                     RentSurcharge* surcharge, std::vector<Action>* actions,
                     const ProposeContext* pctx) const;

  /// Economic leg for one partition (appends at most one action).
  void ProposeEconomic(const Cluster& cluster, const Partition& partition,
                       const VNodeRegistry& vnodes,
                       const std::vector<RingPolicy>& policies,
                       const PartitionStatsMap& stats,
                       RentSurcharge* surcharge,
                       std::vector<Action>* actions,
                       const ProposeContext* pctx) const;

  /// Eq. 2 over an explicit id set plus one extra server.
  double AvailabilityWith(const Cluster& cluster,
                          const std::vector<ServerId>& servers,
                          ServerId extra) const;

  /// Eq. 3 selection: through the pctx's CandidateContext when present
  /// (exact pruned shortlist), the full SelectTargetForSet scan
  /// otherwise.
  Result<CandidateChoice> SelectTarget(
      const Cluster& cluster, const std::vector<ServerId>& replica_servers,
      uint64_t bytes_needed, const ClientMix* mix,
      const std::vector<ServerId>& exclude, const RentSurcharge* surcharge,
      uint64_t tie_break_salt, const ProposeContext* pctx) const;

  Action DecideForVNode(const Cluster& cluster, const Partition& partition,
                        const VirtualNode& vnode, const RingPolicy& policy,
                        double avail_now, const RentSurcharge* surcharge,
                        const ProposeContext* pctx) const;

  Action MaybeReplicate(const Cluster& cluster, const Partition& partition,
                        const RingPolicy& policy,
                        const PartitionEpochStats& stats,
                        const RentSurcharge* surcharge,
                        const ProposeContext* pctx) const;

  DecisionParams params_;
};

}  // namespace skute

#endif  // SKUTE_CORE_DECISION_H_
