#ifndef SKUTE_CORE_EXECUTOR_H_
#define SKUTE_CORE_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/random.h"
#include "skute/core/decision.h"
#include "skute/core/vnode.h"
#include "skute/ring/catalog.h"
#include "skute/storage/replica_store.h"

namespace skute {

/// Outcome counters of one epoch's action execution.
struct ExecutorStats {
  uint64_t replications = 0;
  uint64_t migrations = 0;
  uint64_t suicides = 0;
  /// Actions deferred because a transfer budget was exhausted (the agent
  /// will re-propose next epoch).
  uint64_t blocked_bandwidth = 0;
  /// Actions deferred because the target ran out of storage between
  /// proposal and execution.
  uint64_t blocked_storage = 0;
  /// Actions dropped because re-validation against live state failed
  /// (another agent's action landed first).
  uint64_t aborted_stale = 0;
  uint64_t bytes_replicated = 0;
  uint64_t bytes_migrated = 0;
  /// Full-snapshot bytes actually streamed between storage backends for
  /// the epoch's transfers (0 when real data is off or for in-memory
  /// moves) — the persistence-layer cost behind the catalog's logical
  /// byte counts.
  uint64_t snapshot_bytes = 0;
  /// Incremental-delta bytes streamed instead of full snapshots (warm
  /// destinations synced from the same source backend). snapshot_bytes +
  /// delta_bytes is the epoch's total transfer traffic.
  uint64_t delta_bytes = 0;

  uint64_t applied() const { return replications + migrations + suicides; }

  void Accumulate(const ExecutorStats& other);
};

/// \brief The deterministic output of the planning pass: the epoch's
/// shuffled actions partitioned into **conflict groups**.
///
/// Two actions land in the same group iff their server footprints — the
/// source, the target, and every server hosting a replica of the touched
/// partition (the set re-validation consults) — are transitively
/// connected, or they touch the same partition. Disjoint groups therefore
/// share no Server, Partition, ReplicaStore, or VirtualNode object and
/// can be applied concurrently; within a group the shuffled order is
/// preserved, so a group's execution is exactly the serial executor's.
///
/// Actions whose footprint cannot be computed at all (no valid partition
/// and no valid server — possible only for malformed proposals) fall into
/// the `residual` serial group, applied on the commit thread.
struct ExecutionPlan {
  /// The epoch's actions in shuffled (execution) order.
  std::vector<Action> actions;
  /// Pre-allocated vnode id per action (kInvalidVNode unless kReplicate).
  /// Allocation happens in shuffled order during planning so the id
  /// sequence is a pure function of the plan, never of which worker
  /// applies a group first. Ids of replications that later fail admission
  /// are discarded — ids are never reused, so gaps are harmless.
  std::vector<VNodeId> replicate_vids;
  /// Conflict groups: indices into `actions`, each group in shuffled
  /// order. Groups are numbered by their lowest member index, which is
  /// also the commit (merge) order.
  std::vector<std::vector<size_t>> groups;
  /// Footprint-less actions, applied serially during Commit (after every
  /// group), in shuffled order.
  std::vector<size_t> residual;
  /// Diagnostics: size of the largest conflict group (1000-server runs
  /// should see many small groups; one giant group means the epoch
  /// degenerated to serial execution).
  size_t largest_group = 0;
};

/// A vnode-registry insert recorded by a worker and replayed serially at
/// commit (the registry's hash map must never be mutated concurrently).
struct PendingVNodeCreate {
  VNodeId id = kInvalidVNode;
  PartitionId partition = kInvalidPartition;
  RingId ring = 0;
  ServerId server = kInvalidServer;
  Epoch epoch = 0;
};

/// \brief One conflict group's execution outcome: its counters plus the
/// vnode-registry mutations it deferred to the serial commit.
///
/// Deferral is invisible to execution semantics: a vnode created this
/// epoch is never referenced by this epoch's actions (they were proposed
/// before it existed), and a suicided vnode's staleness is re-detected
/// through the partition's replica set (mutated eagerly in the worker),
/// so later in-group actions reach the same outcome either way.
struct ExecGroupResult {
  ExecutorStats stats;
  std::vector<PendingVNodeCreate> creates;
  std::vector<VNodeId> removes;
};

/// \brief Applies proposed actions under live-state re-validation and the
/// servers' transfer/storage constraints.
///
/// Actions are shuffled before application: the paper's agents act
/// concurrently without coordination, so no agent may rely on proposal
/// order. Re-validation makes concurrent proposals safe — e.g. two
/// replicas of one partition both deciding to suicide will result in only
/// the first being applied if the second would break the SLA.
///
/// Execution is a two-phase plan/commit protocol:
///
///   ExecutionPlan plan = exec.Plan(std::move(actions), rng);   // serial
///   std::vector<ExecGroupResult> results(plan.groups.size());
///   parallel_for(g) results[g] = exec.ApplyGroup(plan, g, ...);  // pool
///   ExecutorStats st = exec.Commit(plan, std::move(results), ...);
///
/// ApplyGroup is safe to call concurrently for *distinct* groups of one
/// plan: groups touch disjoint servers/partitions/stores by construction,
/// the vnode registry is only read (mutations are deferred into the
/// result), and the planner pre-creates any ReplicaStore a transfer
/// target needs so the per-server map is never grown on a worker. Because
/// the grouping, the in-group order, and the commit order are functions
/// of the shuffle alone, a run with 1 thread and a run with N threads
/// produce bit-for-bit identical stores (tests/engine/
/// execute_determinism_test.cc).
class ActionExecutor {
 public:
  /// `replica_data` may be nullptr (synthetic/simulation mode); when
  /// given, replicate/migrate/suicide also copy/move/drop the real
  /// key-value bytes by streaming backend snapshots.
  ActionExecutor(Cluster* cluster, RingCatalog* catalog,
                 VNodeRegistry* vnodes, ReplicaDataMap* replica_data)
      : cluster_(cluster),
        catalog_(catalog),
        vnodes_(vnodes),
        replica_data_(replica_data) {}

  /// Serial convenience: Plan + ApplyGroup over every group in order +
  /// Commit, all on the calling thread. Bit-identical to the parallel
  /// protocol above.
  ExecutorStats Apply(std::vector<Action> actions,
                      const std::vector<RingPolicy>& policies, Epoch epoch,
                      Rng* rng);

  /// Phase 1 (serial): shuffles `actions` with `rng`, pre-allocates vnode
  /// ids for replications, groups the actions into conflict groups, and
  /// pre-creates the ReplicaStores of transfer targets.
  ExecutionPlan Plan(std::vector<Action> actions, Rng* rng);

  /// Phase 2 (parallel-safe across distinct groups): applies group
  /// `group` of `plan` — re-validation, bandwidth/storage admission, and
  /// real-data snapshot streaming — against only that group's servers.
  ExecGroupResult ApplyGroup(const ExecutionPlan& plan, size_t group,
                             const std::vector<RingPolicy>& policies,
                             Epoch epoch);

  /// Phase 3 (serial): merges group results in group order — counters and
  /// the deferred vnode creates/removes — then applies the residual
  /// serial group. `results` must hold one entry per plan group.
  ExecutorStats Commit(const ExecutionPlan& plan,
                       std::vector<ExecGroupResult> results,
                       const std::vector<RingPolicy>& policies, Epoch epoch);

 private:
  enum class Outcome {
    kApplied,
    kBlockedBandwidth,
    kBlockedStorage,
    kStale
  };

  /// Applies plan.actions[index] into `out`, tallying the outcome.
  void ApplyIndexed(const ExecutionPlan& plan, size_t index,
                    const std::vector<RingPolicy>& policies, Epoch epoch,
                    ExecGroupResult* out);

  Outcome ApplyReplicate(const Action& a, VNodeId vid, Epoch epoch,
                         ExecGroupResult* out);
  Outcome ApplyMigrate(const Action& a,
                       const std::vector<RingPolicy>& policies, Epoch epoch,
                       ExecGroupResult* out);
  Outcome ApplySuicide(const Action& a,
                       const std::vector<RingPolicy>& policies,
                       ExecGroupResult* out);

  /// Copy/Move return what was streamed ({0, false} when nothing real
  /// was transferred) and whether it went as a delta. Worker-safe: they
  /// only Find stores (the planner pre-created every transfer target's
  /// store).
  TransferResult CopyRealData(ServerId from, ServerId to, PartitionId pid);
  TransferResult MoveRealData(ServerId from, ServerId to, PartitionId pid);
  void DropRealData(ServerId server, PartitionId pid);

  Cluster* cluster_;
  RingCatalog* catalog_;
  VNodeRegistry* vnodes_;
  ReplicaDataMap* replica_data_;
};

}  // namespace skute

#endif  // SKUTE_CORE_EXECUTOR_H_
