#ifndef SKUTE_CORE_EXECUTOR_H_
#define SKUTE_CORE_EXECUTOR_H_

#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/random.h"
#include "skute/core/decision.h"
#include "skute/core/vnode.h"
#include "skute/ring/catalog.h"
#include "skute/storage/replica_store.h"

namespace skute {

/// Outcome counters of one epoch's action execution.
struct ExecutorStats {
  uint64_t replications = 0;
  uint64_t migrations = 0;
  uint64_t suicides = 0;
  /// Actions deferred because a transfer budget was exhausted (the agent
  /// will re-propose next epoch).
  uint64_t blocked_bandwidth = 0;
  /// Actions deferred because the target ran out of storage between
  /// proposal and execution.
  uint64_t blocked_storage = 0;
  /// Actions dropped because re-validation against live state failed
  /// (another agent's action landed first).
  uint64_t aborted_stale = 0;
  uint64_t bytes_replicated = 0;
  uint64_t bytes_migrated = 0;
  /// Snapshot bytes actually streamed between storage backends for the
  /// epoch's transfers (0 when real data is off or for in-memory moves) —
  /// the persistence-layer cost behind the catalog's logical byte counts.
  uint64_t snapshot_bytes = 0;

  uint64_t applied() const { return replications + migrations + suicides; }

  void Accumulate(const ExecutorStats& other);
};

/// \brief Applies proposed actions under live-state re-validation and the
/// servers' transfer/storage constraints.
///
/// Actions are shuffled before application: the paper's agents act
/// concurrently without coordination, so no agent may rely on proposal
/// order. Re-validation makes concurrent proposals safe — e.g. two
/// replicas of one partition both deciding to suicide will result in only
/// the first being applied if the second would break the SLA.
class ActionExecutor {
 public:
  /// `replica_data` may be nullptr (synthetic/simulation mode); when
  /// given, replicate/migrate/suicide also copy/move/drop the real
  /// key-value bytes by streaming backend snapshots.
  ActionExecutor(Cluster* cluster, RingCatalog* catalog,
                 VNodeRegistry* vnodes, ReplicaDataMap* replica_data)
      : cluster_(cluster),
        catalog_(catalog),
        vnodes_(vnodes),
        replica_data_(replica_data) {}

  /// Applies `actions` in a random order; returns the outcome counters.
  ExecutorStats Apply(std::vector<Action> actions,
                      const std::vector<RingPolicy>& policies, Epoch epoch,
                      Rng* rng);

 private:
  enum class Outcome {
    kApplied,
    kBlockedBandwidth,
    kBlockedStorage,
    kStale
  };

  Outcome ApplyReplicate(const Action& a, Epoch epoch, ExecutorStats* st);
  Outcome ApplyMigrate(const Action& a,
                       const std::vector<RingPolicy>& policies, Epoch epoch,
                       ExecutorStats* st);
  Outcome ApplySuicide(const Action& a,
                       const std::vector<RingPolicy>& policies,
                       ExecutorStats* st);

  /// Copy/Move return the snapshot bytes streamed (0 when nothing real
  /// was transferred).
  uint64_t CopyRealData(ServerId from, ServerId to, PartitionId pid);
  uint64_t MoveRealData(ServerId from, ServerId to, PartitionId pid);
  void DropRealData(ServerId server, PartitionId pid);

  Cluster* cluster_;
  RingCatalog* catalog_;
  VNodeRegistry* vnodes_;
  ReplicaDataMap* replica_data_;
};

}  // namespace skute

#endif  // SKUTE_CORE_EXECUTOR_H_
