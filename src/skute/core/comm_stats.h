#ifndef SKUTE_CORE_COMM_STATS_H_
#define SKUTE_CORE_COMM_STATS_H_

#include <cstdint>

namespace skute {

/// \brief Communication-overhead accounting (the paper's future-work
/// analysis): every message class the protocol would put on the wire,
/// counted at the real call sites. One "message" is one request/reply
/// exchange.
struct CommStats {
  /// Price board publication: one message per online server per epoch.
  uint64_t board_msgs = 0;
  /// Client queries routed (Get + aggregate routing).
  uint64_t query_msgs = 0;
  /// Write fan-out for consistency: one message per live replica per
  /// write, plus the bytes shipped.
  uint64_t consistency_msgs = 0;
  uint64_t consistency_bytes = 0;
  /// Replica transfers (replication, migration, split re-placement).
  uint64_t transfer_msgs = 0;
  uint64_t transfer_bytes = 0;
  /// Decision-plane traffic: proposals the agents made this epoch.
  uint64_t control_msgs = 0;

  uint64_t TotalMsgs() const {
    return board_msgs + query_msgs + consistency_msgs + transfer_msgs +
           control_msgs;
  }

  void Clear() { *this = CommStats(); }

  void Accumulate(const CommStats& other) {
    board_msgs += other.board_msgs;
    query_msgs += other.query_msgs;
    consistency_msgs += other.consistency_msgs;
    consistency_bytes += other.consistency_bytes;
    transfer_msgs += other.transfer_msgs;
    transfer_bytes += other.transfer_bytes;
    control_msgs += other.control_msgs;
  }
};

}  // namespace skute

#endif  // SKUTE_CORE_COMM_STATS_H_
