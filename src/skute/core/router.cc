#include "skute/core/router.h"

#include <algorithm>

#include "skute/common/hash.h"

namespace skute {

void Router::RefreshSnapshot() {
  tables_.clear();
  const RingCatalog& catalog = store_->catalog();
  tables_.resize(catalog.ring_count());
  for (RingId r = 0; r < catalog.ring_count(); ++r) {
    const VirtualRing* ring = catalog.ring(r);
    RingTable& table = tables_[r];
    table.begins.reserve(ring->partition_count());
    table.routes.reserve(ring->partition_count());
    for (const auto& p : ring->partitions()) {
      table.begins.push_back(p->range().begin);
      Route route;
      route.partition = p->id();
      for (const ReplicaInfo& rep : p->replicas()) {
        route.replicas.push_back(rep.server);
      }
      table.routes.push_back(std::move(route));
    }
  }
  seen_version_ = store_->placement_version();
  ++refreshes_;
}

Result<Router::Route> Router::LookupHash(RingId ring, uint64_t key_hash) {
  if (store_->placement_version() != seen_version_) {
    RefreshSnapshot();
  } else {
    ++cache_hits_;
  }
  if (ring >= tables_.size()) {
    return Status::NotFound("unknown ring");
  }
  const RingTable& table = tables_[ring];
  if (table.begins.empty()) {
    return Status::NotFound("ring has no partitions");
  }
  // Last partition whose begin <= hash; wraps to the final entry (the
  // same arithmetic as VirtualRing::FindIndex, against the snapshot).
  const auto it = std::upper_bound(table.begins.begin(),
                                   table.begins.end(), key_hash);
  const size_t idx = it == table.begins.begin()
                         ? table.begins.size() - 1
                         : static_cast<size_t>(it - table.begins.begin()) -
                               1;
  return table.routes[idx];
}

Result<Router::Route> Router::Lookup(RingId ring, std::string_view key) {
  return LookupHash(ring, Hash64(key));
}

}  // namespace skute
