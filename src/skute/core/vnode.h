#ifndef SKUTE_CORE_VNODE_H_
#define SKUTE_CORE_VNODE_H_

#include <unordered_map>

#include "skute/common/result.h"
#include "skute/common/units.h"
#include "skute/economy/balance.h"
#include "skute/ring/partition.h"
#include "skute/ring/ring.h"

namespace skute {

/// \brief One virtual node: the autonomous agent managing one replica of
/// one partition on one server (Section II of the paper).
///
/// A vnode's mutable state is its per-epoch query counters and its balance
/// history; everything else (placement) lives in the partition's replica
/// set, which the vnode mirrors via `server`.
struct VirtualNode {
  VNodeId id = kInvalidVNode;
  PartitionId partition = kInvalidPartition;
  RingId ring = 0;
  ServerId server = kInvalidServer;
  Epoch created = 0;

  /// Queries routed to this replica this epoch, and the subset actually
  /// served within the hosting server's capacity (utility accrues only on
  /// served queries).
  uint64_t queries_routed = 0;
  uint64_t queries_served = 0;

  /// Eq. 5 history (window = the decision hysteresis f).
  BalanceTracker balance;

  /// Last epoch's utility and rent (for metrics/debugging).
  double last_utility = 0.0;
  double last_rent = 0.0;

  VirtualNode(VNodeId id_in, PartitionId partition_in, RingId ring_in,
              ServerId server_in, Epoch created_in, int balance_window)
      : id(id_in),
        partition(partition_in),
        ring(ring_in),
        server(server_in),
        created(created_in),
        balance(balance_window) {}

  void ResetEpochCounters() {
    queries_routed = 0;
    queries_served = 0;
  }
};

/// \brief Owner of all live vnode agents, keyed by id.
class VNodeRegistry {
 public:
  explicit VNodeRegistry(int balance_window)
      : balance_window_(balance_window) {}

  /// Creates an agent for a fresh replica and returns it.
  VirtualNode* Create(VNodeId id, PartitionId partition, RingId ring,
                      ServerId server, Epoch epoch);

  VirtualNode* Find(VNodeId id);
  const VirtualNode* Find(VNodeId id) const;

  /// Removes an agent (suicide, failure); NotFound when unknown.
  Status Remove(VNodeId id);

  size_t size() const { return nodes_.size(); }

  /// Iteration over all agents (unordered).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [id, node] : nodes_) fn(&node);
  }

  int balance_window() const { return balance_window_; }

 private:
  int balance_window_;
  std::unordered_map<VNodeId, VirtualNode> nodes_;
};

}  // namespace skute

#endif  // SKUTE_CORE_VNODE_H_
