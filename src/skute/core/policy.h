#ifndef SKUTE_CORE_POLICY_H_
#define SKUTE_CORE_POLICY_H_

#include <memory>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/core/decision.h"
#include "skute/core/decision_cache.h"
#include "skute/core/vnode.h"
#include "skute/economy/candidate_context.h"
#include "skute/ring/catalog.h"

namespace skute {

/// \brief Strategy seam of the store: given the epoch's end state, propose
/// the replica-management actions to execute.
///
/// The paper's contribution is EconomicPolicy (virtual economy +
/// Section II-C); the baseline benches swap in a Dynamo-style
/// SuccessorPolicy (skute/baseline) against the same substrate, executor
/// and metrics.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Proposes this epoch's actions. Implementations must not mutate any
  /// store state; the executor re-validates and applies.
  virtual std::vector<Action> ProposeActions(
      const Cluster& cluster, const RingCatalog& catalog,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) = 0;

  /// \brief Sharded proposal support. When true, the epoch pipeline calls
  /// ProposeActionsForShard once per partition shard — concurrently, from
  /// the worker pool — instead of ProposeActions.
  ///
  /// Contract for implementations: the method must be thread-safe (const,
  /// no hidden mutable state) and its output must be a function of the
  /// shard's contents and order only, so that results do not depend on
  /// the thread count (see ShardPlan's determinism note).
  virtual bool SupportsShardedProposals() const { return false; }

  /// Proposes actions for the partitions of one shard. Only called when
  /// SupportsShardedProposals() is true.
  virtual std::vector<Action> ProposeActionsForShard(
      const Cluster& cluster, const std::vector<const Partition*>& shard,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) const {
    (void)cluster;
    (void)shard;
    (void)vnodes;
    (void)policies;
    (void)stats;
    return {};
  }

  /// \brief Per-epoch prepare step, called serially by ProposeActionsStage
  /// before the shard fan-out (and only on the sharded path). Policies
  /// build whatever epoch-scoped acceleration state they want here —
  /// EconomicPolicy builds its CandidateContext and primes its
  /// ProposalCache. `streak_flags` is the pipeline's per-partition streak
  /// table from RecordBalancesStage (kStreak* bits; may be null) and is
  /// only valid until EndProposalEpoch. `run_indexed` fans f(i) over the
  /// epoch's worker pool (empty = inline).
  virtual void BeginProposalEpoch(const Cluster& cluster,
                                  const RingCatalog& catalog,
                                  const std::vector<RingPolicy>& policies,
                                  const std::vector<uint8_t>* streak_flags,
                                  const IndexedRunner& run_indexed) {
    (void)cluster;
    (void)catalog;
    (void)policies;
    (void)streak_flags;
    (void)run_indexed;
  }

  /// Called serially after the fan-out completes: drop any borrowed
  /// per-epoch pointers (the streak table dies with the epoch context).
  virtual void EndProposalEpoch() {}

  /// Human-readable policy name for reports.
  virtual const char* name() const = 0;
};

/// \brief The paper's policy: availability repair plus per-vnode
/// net-benefit decisions (Section II-C) via DecisionEngine.
///
/// Owns the decision-plane acceleration state: a per-epoch
/// CandidateContext (rebuilt in BeginProposalEpoch against the fresh
/// board prices) and a cross-epoch ProposalCache (availability reuse +
/// dirty-partition skip). Both are exact — proposals are bit-for-bit
/// those of the uncached engine — and both are disabled per
/// DecisionParams::use_candidate_context / use_proposal_cache.
class EconomicPolicy : public PlacementPolicy {
 public:
  explicit EconomicPolicy(const DecisionParams& params) : engine_(params) {}

  /// Legacy whole-catalog entry point: always the uncached engine path
  /// (no prepare step has run, and per-epoch state may be stale).
  std::vector<Action> ProposeActions(
      const Cluster& cluster, const RingCatalog& catalog,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) override {
    return engine_.ProposeAll(cluster, catalog, vnodes, policies, stats);
  }

  /// The decision engine's passes are const and read-only over shared
  /// state, so shards can run concurrently.
  bool SupportsShardedProposals() const override { return true; }

  std::vector<Action> ProposeActionsForShard(
      const Cluster& cluster, const std::vector<const Partition*>& shard,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) const override {
    return engine_.ProposeForPartitions(cluster, shard, vnodes, policies,
                                        stats, &pctx_);
  }

  void BeginProposalEpoch(const Cluster& cluster, const RingCatalog& catalog,
                          const std::vector<RingPolicy>& policies,
                          const std::vector<uint8_t>* streak_flags,
                          const IndexedRunner& run_indexed) override;

  void EndProposalEpoch() override { pctx_.streak_flags = nullptr; }

  const char* name() const override { return "economic"; }

  const DecisionEngine& engine() const { return engine_; }

  /// Cumulative decision-plane counters (bench/CI observability).
  DecisionPlaneStats decision_stats() const;

 private:
  DecisionEngine engine_;
  /// Per-epoch Eq. 3 snapshot; rebuilt by every BeginProposalEpoch.
  CandidateContext candidates_;
  /// Cross-epoch availability / dirty-partition cache.
  ProposalCache avail_cache_;
  /// Assembled in BeginProposalEpoch (serial), read concurrently by the
  /// shard fan-out; members are null until the first prepare step, so
  /// direct ProposeActionsForShard calls (tests) get the uncached path.
  ProposeContext pctx_;
  uint64_t epochs_prepared_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CORE_POLICY_H_
