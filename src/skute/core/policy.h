#ifndef SKUTE_CORE_POLICY_H_
#define SKUTE_CORE_POLICY_H_

#include <memory>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/core/decision.h"
#include "skute/core/vnode.h"
#include "skute/ring/catalog.h"

namespace skute {

/// \brief Strategy seam of the store: given the epoch's end state, propose
/// the replica-management actions to execute.
///
/// The paper's contribution is EconomicPolicy (virtual economy +
/// Section II-C); the baseline benches swap in a Dynamo-style
/// SuccessorPolicy (skute/baseline) against the same substrate, executor
/// and metrics.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Proposes this epoch's actions. Implementations must not mutate any
  /// store state; the executor re-validates and applies.
  virtual std::vector<Action> ProposeActions(
      const Cluster& cluster, const RingCatalog& catalog,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) = 0;

  /// \brief Sharded proposal support. When true, the epoch pipeline calls
  /// ProposeActionsForShard once per partition shard — concurrently, from
  /// the worker pool — instead of ProposeActions.
  ///
  /// Contract for implementations: the method must be thread-safe (const,
  /// no hidden mutable state) and its output must be a function of the
  /// shard's contents and order only, so that results do not depend on
  /// the thread count (see ShardPlan's determinism note).
  virtual bool SupportsShardedProposals() const { return false; }

  /// Proposes actions for the partitions of one shard. Only called when
  /// SupportsShardedProposals() is true.
  virtual std::vector<Action> ProposeActionsForShard(
      const Cluster& cluster, const std::vector<const Partition*>& shard,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) const {
    (void)cluster;
    (void)shard;
    (void)vnodes;
    (void)policies;
    (void)stats;
    return {};
  }

  /// Human-readable policy name for reports.
  virtual const char* name() const = 0;
};

/// \brief The paper's policy: availability repair plus per-vnode
/// net-benefit decisions (Section II-C) via DecisionEngine.
class EconomicPolicy : public PlacementPolicy {
 public:
  explicit EconomicPolicy(const DecisionParams& params) : engine_(params) {}

  std::vector<Action> ProposeActions(
      const Cluster& cluster, const RingCatalog& catalog,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) override {
    return engine_.ProposeAll(cluster, catalog, vnodes, policies, stats);
  }

  /// The decision engine's passes are const and read-only over shared
  /// state, so shards can run concurrently.
  bool SupportsShardedProposals() const override { return true; }

  std::vector<Action> ProposeActionsForShard(
      const Cluster& cluster, const std::vector<const Partition*>& shard,
      const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
      const PartitionStatsMap& stats) const override {
    return engine_.ProposeForPartitions(cluster, shard, vnodes, policies,
                                        stats);
  }

  const char* name() const override { return "economic"; }

  const DecisionEngine& engine() const { return engine_; }

 private:
  DecisionEngine engine_;
};

}  // namespace skute

#endif  // SKUTE_CORE_POLICY_H_
