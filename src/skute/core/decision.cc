#include "skute/core/decision.h"

#include <algorithm>

#include "skute/common/logging.h"
#include "skute/core/decision_cache.h"
#include "skute/economy/availability.h"
#include "skute/economy/candidate_context.h"
#include "skute/topology/location.h"

namespace skute {

namespace {

/// The live replica with the lowest server id — the deterministic "primary"
/// that initiates repair. kInvalidVNode when the partition has no live
/// replica (lost).
VNodeId PrimaryVNode(const Partition& partition, const Cluster& cluster,
                     ServerId* primary_server) {
  VNodeId best = kInvalidVNode;
  ServerId best_server = kInvalidServer;
  for (const ReplicaInfo& r : partition.replicas()) {
    const Server* s = cluster.server(r.server);
    if (s == nullptr || !s->online()) continue;
    if (best == kInvalidVNode || r.server < best_server) {
      best = r.vnode;
      best_server = r.server;
    }
  }
  if (primary_server != nullptr) *primary_server = best_server;
  return best;
}

/// A partition whose ring id is past the policy vector is a wiring bug
/// (rings attached without policies rebuilt); indexing would be silent
/// UB. Fail loudly — same stance as the query plane's misconfig checks —
/// and propose nothing for the partition.
bool CheckRingPolicy(const Partition& partition,
                     const std::vector<RingPolicy>& policies,
                     const char* pass) {
  if (partition.ring() < policies.size()) return true;
  SKUTE_LOG(kError) << "decision (" << pass << "): partition "
                    << partition.id() << " is on ring " << partition.ring()
                    << " but only " << policies.size()
                    << " ring policies are configured; skipping it";
  return false;
}

}  // namespace

double DecisionEngine::AvailabilityWith(const Cluster& cluster,
                                        const std::vector<ServerId>& servers,
                                        ServerId extra) const {
  return AvailabilityModel::OfServerIdsWith(cluster, servers, extra);
}

Result<CandidateChoice> DecisionEngine::SelectTarget(
    const Cluster& cluster, const std::vector<ServerId>& replica_servers,
    uint64_t bytes_needed, const ClientMix* mix,
    const std::vector<ServerId>& exclude, const RentSurcharge* surcharge,
    uint64_t tie_break_salt, const ProposeContext* pctx) const {
  if (pctx != nullptr && pctx->candidates != nullptr &&
      pctx->candidates->ready()) {
    return pctx->candidates->Select(replica_servers, bytes_needed, mix,
                                    exclude, surcharge, tie_break_salt);
  }
  return SelectTargetForSet(cluster, replica_servers, bytes_needed, mix,
                            params_.candidate, exclude, surcharge,
                            tie_break_salt);
}

void DecisionEngine::ProposeRepair(const Cluster& cluster,
                                   const Partition& partition,
                                   const std::vector<RingPolicy>& policies,
                                   RentSurcharge* surcharge,
                                   std::vector<Action>* actions,
                                   const ProposeContext* pctx) const {
  if (!CheckRingPolicy(partition, policies, "repair")) return;
  const RingPolicy& policy = policies[partition.ring()];
  if (policy.min_availability <= 0.0) return;

  std::vector<ServerId> live = ReplicaServerSet(partition);
  // Drop offline entries for the hypothetical availability computation.
  live.erase(std::remove_if(live.begin(), live.end(),
                            [&](ServerId id) {
                              const Server* s = cluster.server(id);
                              return s == nullptr || !s->online();
                            }),
             live.end());
  if (live.empty()) return;  // lost partition: no source to repair from

  // OfPartition over the live set — bit-identical to OfServerIds(live)
  // (same servers, same pair order), so the cached value is shared with
  // the economic pass.
  double avail =
      pctx != nullptr && pctx->avail_cache != nullptr
          ? pctx->avail_cache->AvailabilityOf(partition, cluster)
          : AvailabilityModel::OfServerIds(cluster, live);
  if (avail >= policy.min_availability) return;

  ServerId primary_server = kInvalidServer;
  const VNodeId primary = PrimaryVNode(partition, cluster, &primary_server);

  for (int step = 0; step < params_.max_repair_steps_per_epoch &&
                     avail < policy.min_availability;
       ++step) {
    if (params_.max_replicas_per_partition != 0 &&
        live.size() >= params_.max_replicas_per_partition) {
      break;
    }
    auto choice = SelectTarget(cluster, live, partition.bytes(), policy.mix,
                               /*exclude=*/{}, surcharge,
                               /*tie_break_salt=*/partition.id(), pctx);
    if (!choice.ok()) break;
    Action a;
    a.type = ActionType::kReplicate;
    a.partition = partition.id();
    a.ring = partition.ring();
    a.vnode = primary;
    a.source = primary_server;
    a.target = choice->server;
    a.score = choice->score;
    a.reason = "repair: availability below threshold";
    actions->push_back(a);
    if (surcharge != nullptr) {
      (*surcharge)[choice->server] += params_.pending_placement_penalty;
    }
    live.push_back(choice->server);
    avail = AvailabilityModel::OfServerIds(cluster, live);
  }
}

std::vector<Action> DecisionEngine::RepairPass(
    const Cluster& cluster, const RingCatalog& catalog,
    const std::vector<RingPolicy>& policies, RentSurcharge* surcharge,
    const ProposeContext* pctx) const {
  std::vector<Action> actions;
  catalog.ForEachPartition([&](const Partition* p) {
    ProposeRepair(cluster, *p, policies, surcharge, &actions, pctx);
  });
  return actions;
}

Action DecisionEngine::DecideForVNode(const Cluster& cluster,
                                      const Partition& partition,
                                      const VirtualNode& vnode,
                                      const RingPolicy& policy,
                                      double avail_now,
                                      const RentSurcharge* surcharge,
                                      const ProposeContext* pctx) const {
  Action none;
  if (!vnode.balance.NegativeStreak()) return none;

  const Server* self = cluster.server(vnode.server);
  if (self == nullptr || !self->online()) return none;

  // Suicide when the partition stays available without this replica.
  const double avail_without = AvailabilityModel::OfPartitionWithout(
      partition, cluster, vnode.server);
  if (partition.replica_count() > 1 &&
      avail_without >= policy.min_availability) {
    Action a;
    a.type = ActionType::kSuicide;
    a.partition = partition.id();
    a.ring = partition.ring();
    a.vnode = vnode.id;
    a.source = vnode.server;
    a.reason = "suicide: negative balance, availability holds without me";
    return a;
  }

  // Otherwise look for a strictly cheaper server that preserves
  // availability (the migration leg of Section II-C).
  auto choice = SelectTarget(cluster, ReplicaServerSet(partition,
                                                       vnode.server),
                             partition.bytes(), policy.mix,
                             /*exclude=*/{vnode.server}, surcharge,
                             /*tie_break_salt=*/partition.id(), pctx);
  if (!choice.ok()) return none;

  const double my_rent = cluster.board().RentOf(vnode.server);
  const double target_rent = cluster.board().RentOf(choice->server);
  if (target_rent >=
      my_rent * (1.0 - params_.migration_savings_threshold)) {
    return none;  // not enough savings to be worth the move
  }

  std::vector<ServerId> remaining = ReplicaServerSet(partition,
                                                     vnode.server);
  const double avail_after =
      AvailabilityWith(cluster, remaining, choice->server);
  const double required = std::min(policy.min_availability, avail_now);
  if (avail_after < required) return none;

  Action a;
  a.type = ActionType::kMigrate;
  a.partition = partition.id();
  a.ring = partition.ring();
  a.vnode = vnode.id;
  a.source = vnode.server;
  a.target = choice->server;
  a.score = choice->score;
  a.reason = "migrate: negative balance, cheaper server found";
  return a;
}

Action DecisionEngine::MaybeReplicate(const Cluster& cluster,
                                      const Partition& partition,
                                      const RingPolicy& policy,
                                      const PartitionEpochStats& stats,
                                      const RentSurcharge* surcharge,
                                      const ProposeContext* pctx) const {
  Action none;
  const size_t replicas = partition.replica_count();
  if (params_.max_replicas_per_partition != 0 &&
      replicas >= params_.max_replicas_per_partition) {
    return none;
  }
  if (replicas >= cluster.online_count()) return none;

  auto choice = SelectTarget(cluster, ReplicaServerSet(partition),
                             partition.bytes(), policy.mix,
                             /*exclude=*/{}, surcharge,
                             /*tie_break_salt=*/partition.id(), pctx);
  if (!choice.ok()) return none;
  const Server* target = cluster.server(choice->server);

  // Popularity must cover the new replica's rent plus the consistency
  // cost of one more copy (Section II-C replication verification). The
  // projected utility is this partition's epoch queries split across
  // R+1 replicas, valued at the target's proximity.
  const double g = policy.mix == nullptr
                       ? 1.0
                       : NormalizedProximity(*policy.mix,
                                             target->location());
  const double projected_queries =
      static_cast<double>(stats.queries) /
      static_cast<double>(replicas + 1);
  const double projected_utility =
      params_.utility.value_per_query * projected_queries *
      (params_.utility.divide_by_proximity ? (g > 0 ? 1.0 / g : 1.0) : g);
  const double target_rent = cluster.board().RentOf(choice->server);
  const double consistency =
      params_.consistency.Cost(replicas + 1, stats.write_bytes);
  if (projected_utility <= target_rent + consistency) return none;

  Action a;
  a.type = ActionType::kReplicate;
  a.partition = partition.id();
  a.ring = partition.ring();
  a.source = kInvalidServer;  // executor picks a live, bandwidth-free source
  a.target = choice->server;
  a.score = choice->score;
  a.reason = "replicate: popularity covers rent and consistency cost";
  return a;
}

void DecisionEngine::ProposeEconomic(const Cluster& cluster,
                                     const Partition& partition,
                                     const VNodeRegistry& vnodes,
                                     const std::vector<RingPolicy>& policies,
                                     const PartitionStatsMap& stats,
                                     RentSurcharge* surcharge,
                                     std::vector<Action>* actions,
                                     const ProposeContext* pctx) const {
  static const PartitionEpochStats kNoTraffic;

  auto charge = [&](const Action& a) {
    if (surcharge != nullptr && a.target != kInvalidServer) {
      (*surcharge)[a.target] += params_.pending_placement_penalty;
    }
  };

  if (!CheckRingPolicy(partition, policies, "economic")) return;
  const RingPolicy& policy = policies[partition.ring()];
  ProposalCache* cache =
      pctx != nullptr ? pctx->avail_cache : nullptr;
  const double avail = cache != nullptr
                           ? cache->AvailabilityOf(partition, cluster)
                           : AvailabilityModel::OfPartition(partition,
                                                            cluster);
  if (avail < policy.min_availability) {
    return;  // under-replicated: repair owns this partition this epoch
  }

  // Dirty check: a partition can only act when some replica vnode holds
  // a full negative streak (cost-cutting) or positive streak (growth) —
  // the quiescent path below reads nothing else, so skipping clean
  // partitions is exact. The flags come precomputed from
  // RecordBalancesStage when available (it already visited every vnode),
  // from an inline scan otherwise.
  bool has_negative = false;
  bool has_positive = false;
  bool flags_known = false;
  if (pctx != nullptr && pctx->streak_flags != nullptr &&
      partition.id() < pctx->streak_flags->size()) {
    const uint8_t flags = (*pctx->streak_flags)[partition.id()];
    if (flags & kStreakFlagsValid) {
      flags_known = true;
      has_negative = (flags & kStreakNegative) != 0;
      has_positive = (flags & kStreakPositive) != 0;
    }
  }
  if (!flags_known) {
    for (const ReplicaInfo& r : partition.replicas()) {
      const VirtualNode* v = vnodes.Find(r.vnode);
      if (v == nullptr) continue;
      has_negative = has_negative || v->balance.NegativeStreak();
      has_positive = has_positive || v->balance.PositiveStreak();
      if (has_negative && has_positive) break;
    }
  }
  if (!has_negative && !has_positive) {
    if (cache != nullptr) cache->CountClean();
    return;  // quiescent: last epoch's no-action outcome stands
  }
  if (cache != nullptr) cache->CountDirty();

  // Cost-cutting first: the first vnode (replica order) with a negative
  // streak acts; one action per partition per epoch. DecideForVNode
  // returns none for every vnode without a negative streak, so the loop
  // only runs when one exists.
  if (has_negative) {
    for (const ReplicaInfo& r : partition.replicas()) {
      const VirtualNode* v = vnodes.Find(r.vnode);
      if (v == nullptr) continue;
      Action a = DecideForVNode(cluster, partition, *v, policy, avail,
                                surcharge, pctx);
      if (a.type != ActionType::kNone) {
        charge(a);
        actions->push_back(a);
        return;
      }
    }
  }

  // Growth second: replicate when some replica sustained profit.
  if (!has_positive) return;
  const auto it = stats.find(partition.id());
  const PartitionEpochStats& traffic =
      it == stats.end() ? kNoTraffic : it->second;
  Action a = MaybeReplicate(cluster, partition, policy, traffic, surcharge,
                            pctx);
  if (a.type != ActionType::kNone) {
    charge(a);
    actions->push_back(a);
  }
}

std::vector<Action> DecisionEngine::EconomicPass(
    const Cluster& cluster, const RingCatalog& catalog,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats, RentSurcharge* surcharge,
    const ProposeContext* pctx) const {
  std::vector<Action> actions;
  catalog.ForEachPartition([&](const Partition* p) {
    ProposeEconomic(cluster, *p, vnodes, policies, stats, surcharge,
                    &actions, pctx);
  });
  return actions;
}

std::vector<Action> DecisionEngine::ProposeAll(
    const Cluster& cluster, const RingCatalog& catalog,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats, const ProposeContext* pctx) const {
  RentSurcharge surcharge;
  std::vector<Action> actions =
      RepairPass(cluster, catalog, policies, &surcharge, pctx);
  std::vector<Action> econ = EconomicPass(cluster, catalog, vnodes,
                                          policies, stats, &surcharge, pctx);
  actions.insert(actions.end(), econ.begin(), econ.end());
  return actions;
}

std::vector<Action> DecisionEngine::ProposeForPartitions(
    const Cluster& cluster,
    const std::vector<const Partition*>& partitions,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats, const ProposeContext* pctx) const {
  // Same pass order as ProposeAll — repair over the whole shard, then
  // economic — so a single-shard plan reproduces it action for action.
  RentSurcharge surcharge;
  std::vector<Action> actions;
  for (const Partition* p : partitions) {
    ProposeRepair(cluster, *p, policies, &surcharge, &actions, pctx);
  }
  for (const Partition* p : partitions) {
    ProposeEconomic(cluster, *p, vnodes, policies, stats, &surcharge,
                    &actions, pctx);
  }
  return actions;
}

}  // namespace skute
