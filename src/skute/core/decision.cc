#include "skute/core/decision.h"

#include <algorithm>

#include "skute/economy/availability.h"
#include "skute/topology/location.h"

namespace skute {

namespace {

/// The live replica with the lowest server id — the deterministic "primary"
/// that initiates repair. kInvalidVNode when the partition has no live
/// replica (lost).
VNodeId PrimaryVNode(const Partition& partition, const Cluster& cluster,
                     ServerId* primary_server) {
  VNodeId best = kInvalidVNode;
  ServerId best_server = kInvalidServer;
  for (const ReplicaInfo& r : partition.replicas()) {
    const Server* s = cluster.server(r.server);
    if (s == nullptr || !s->online()) continue;
    if (best == kInvalidVNode || r.server < best_server) {
      best = r.vnode;
      best_server = r.server;
    }
  }
  if (primary_server != nullptr) *primary_server = best_server;
  return best;
}

}  // namespace

double DecisionEngine::AvailabilityWith(const Cluster& cluster,
                                        const std::vector<ServerId>& servers,
                                        ServerId extra) const {
  return AvailabilityModel::OfServerIdsWith(cluster, servers, extra);
}

void DecisionEngine::ProposeRepair(const Cluster& cluster,
                                   const Partition& partition,
                                   const std::vector<RingPolicy>& policies,
                                   RentSurcharge* surcharge,
                                   std::vector<Action>* actions) const {
  const RingPolicy& policy = policies[partition.ring()];
  if (policy.min_availability <= 0.0) return;

  std::vector<ServerId> live = ReplicaServerSet(partition);
  // Drop offline entries for the hypothetical availability computation.
  live.erase(std::remove_if(live.begin(), live.end(),
                            [&](ServerId id) {
                              const Server* s = cluster.server(id);
                              return s == nullptr || !s->online();
                            }),
             live.end());
  if (live.empty()) return;  // lost partition: no source to repair from

  double avail = AvailabilityModel::OfServerIds(cluster, live);
  if (avail >= policy.min_availability) return;

  ServerId primary_server = kInvalidServer;
  const VNodeId primary = PrimaryVNode(partition, cluster, &primary_server);

  for (int step = 0; step < params_.max_repair_steps_per_epoch &&
                     avail < policy.min_availability;
       ++step) {
    if (params_.max_replicas_per_partition != 0 &&
        live.size() >= params_.max_replicas_per_partition) {
      break;
    }
    auto choice = SelectTargetForSet(
        cluster, live, partition.bytes(), policy.mix, params_.candidate,
        /*exclude=*/{}, surcharge, /*tie_break_salt=*/partition.id());
    if (!choice.ok()) break;
    Action a;
    a.type = ActionType::kReplicate;
    a.partition = partition.id();
    a.ring = partition.ring();
    a.vnode = primary;
    a.source = primary_server;
    a.target = choice->server;
    a.score = choice->score;
    a.reason = "repair: availability below threshold";
    actions->push_back(a);
    if (surcharge != nullptr) {
      (*surcharge)[choice->server] += params_.pending_placement_penalty;
    }
    live.push_back(choice->server);
    avail = AvailabilityModel::OfServerIds(cluster, live);
  }
}

std::vector<Action> DecisionEngine::RepairPass(
    const Cluster& cluster, const RingCatalog& catalog,
    const std::vector<RingPolicy>& policies,
    RentSurcharge* surcharge) const {
  std::vector<Action> actions;
  catalog.ForEachPartition([&](const Partition* p) {
    ProposeRepair(cluster, *p, policies, surcharge, &actions);
  });
  return actions;
}

Action DecisionEngine::DecideForVNode(const Cluster& cluster,
                                      const Partition& partition,
                                      const VirtualNode& vnode,
                                      const RingPolicy& policy,
                                      double avail_now,
                                      const RentSurcharge* surcharge) const {
  Action none;
  if (!vnode.balance.NegativeStreak()) return none;

  const Server* self = cluster.server(vnode.server);
  if (self == nullptr || !self->online()) return none;

  // Suicide when the partition stays available without this replica.
  const double avail_without = AvailabilityModel::OfPartitionWithout(
      partition, cluster, vnode.server);
  if (partition.replica_count() > 1 &&
      avail_without >= policy.min_availability) {
    Action a;
    a.type = ActionType::kSuicide;
    a.partition = partition.id();
    a.ring = partition.ring();
    a.vnode = vnode.id;
    a.source = vnode.server;
    a.reason = "suicide: negative balance, availability holds without me";
    return a;
  }

  // Otherwise look for a strictly cheaper server that preserves
  // availability (the migration leg of Section II-C).
  auto choice = SelectTargetForSet(
      cluster, ReplicaServerSet(partition, vnode.server),
      partition.bytes(), policy.mix, params_.candidate,
      /*exclude=*/{vnode.server}, surcharge,
      /*tie_break_salt=*/partition.id());
  if (!choice.ok()) return none;

  const double my_rent = cluster.board().RentOf(vnode.server);
  const double target_rent = cluster.board().RentOf(choice->server);
  if (target_rent >=
      my_rent * (1.0 - params_.migration_savings_threshold)) {
    return none;  // not enough savings to be worth the move
  }

  std::vector<ServerId> remaining = ReplicaServerSet(partition,
                                                     vnode.server);
  const double avail_after =
      AvailabilityWith(cluster, remaining, choice->server);
  const double required = std::min(policy.min_availability, avail_now);
  if (avail_after < required) return none;

  Action a;
  a.type = ActionType::kMigrate;
  a.partition = partition.id();
  a.ring = partition.ring();
  a.vnode = vnode.id;
  a.source = vnode.server;
  a.target = choice->server;
  a.score = choice->score;
  a.reason = "migrate: negative balance, cheaper server found";
  return a;
}

Action DecisionEngine::MaybeReplicate(const Cluster& cluster,
                                      const Partition& partition,
                                      const RingPolicy& policy,
                                      const PartitionEpochStats& stats,
                                      const RentSurcharge* surcharge) const {
  Action none;
  const size_t replicas = partition.replica_count();
  if (params_.max_replicas_per_partition != 0 &&
      replicas >= params_.max_replicas_per_partition) {
    return none;
  }
  if (replicas >= cluster.online_count()) return none;

  auto choice = SelectTargetForSet(
      cluster, ReplicaServerSet(partition), partition.bytes(), policy.mix,
      params_.candidate, /*exclude=*/{}, surcharge,
      /*tie_break_salt=*/partition.id());
  if (!choice.ok()) return none;
  const Server* target = cluster.server(choice->server);

  // Popularity must cover the new replica's rent plus the consistency
  // cost of one more copy (Section II-C replication verification). The
  // projected utility is this partition's epoch queries split across
  // R+1 replicas, valued at the target's proximity.
  const double g = policy.mix == nullptr
                       ? 1.0
                       : NormalizedProximity(*policy.mix,
                                             target->location());
  const double projected_queries =
      static_cast<double>(stats.queries) /
      static_cast<double>(replicas + 1);
  const double projected_utility =
      params_.utility.value_per_query * projected_queries *
      (params_.utility.divide_by_proximity ? (g > 0 ? 1.0 / g : 1.0) : g);
  const double target_rent = cluster.board().RentOf(choice->server);
  const double consistency =
      params_.consistency.Cost(replicas + 1, stats.write_bytes);
  if (projected_utility <= target_rent + consistency) return none;

  Action a;
  a.type = ActionType::kReplicate;
  a.partition = partition.id();
  a.ring = partition.ring();
  a.source = kInvalidServer;  // executor picks a live, bandwidth-free source
  a.target = choice->server;
  a.score = choice->score;
  a.reason = "replicate: popularity covers rent and consistency cost";
  return a;
}

void DecisionEngine::ProposeEconomic(const Cluster& cluster,
                                     const Partition& partition,
                                     const VNodeRegistry& vnodes,
                                     const std::vector<RingPolicy>& policies,
                                     const PartitionStatsMap& stats,
                                     RentSurcharge* surcharge,
                                     std::vector<Action>* actions) const {
  static const PartitionEpochStats kNoTraffic;

  auto charge = [&](const Action& a) {
    if (surcharge != nullptr && a.target != kInvalidServer) {
      (*surcharge)[a.target] += params_.pending_placement_penalty;
    }
  };

  const RingPolicy& policy = policies[partition.ring()];
  const double avail = AvailabilityModel::OfPartition(partition, cluster);
  if (avail < policy.min_availability) {
    return;  // under-replicated: repair owns this partition this epoch
  }

  // Cost-cutting first: the first vnode (replica order) with a negative
  // streak acts; one action per partition per epoch.
  for (const ReplicaInfo& r : partition.replicas()) {
    const VirtualNode* v = vnodes.Find(r.vnode);
    if (v == nullptr) continue;
    Action a =
        DecideForVNode(cluster, partition, *v, policy, avail, surcharge);
    if (a.type != ActionType::kNone) {
      charge(a);
      actions->push_back(a);
      return;
    }
  }

  // Growth second: replicate when some replica sustained profit.
  bool positive = false;
  for (const ReplicaInfo& r : partition.replicas()) {
    const VirtualNode* v = vnodes.Find(r.vnode);
    if (v != nullptr && v->balance.PositiveStreak()) {
      positive = true;
      break;
    }
  }
  if (!positive) return;
  const auto it = stats.find(partition.id());
  const PartitionEpochStats& traffic =
      it == stats.end() ? kNoTraffic : it->second;
  Action a = MaybeReplicate(cluster, partition, policy, traffic, surcharge);
  if (a.type != ActionType::kNone) {
    charge(a);
    actions->push_back(a);
  }
}

std::vector<Action> DecisionEngine::EconomicPass(
    const Cluster& cluster, const RingCatalog& catalog,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats, RentSurcharge* surcharge) const {
  std::vector<Action> actions;
  catalog.ForEachPartition([&](const Partition* p) {
    ProposeEconomic(cluster, *p, vnodes, policies, stats, surcharge,
                    &actions);
  });
  return actions;
}

std::vector<Action> DecisionEngine::ProposeAll(
    const Cluster& cluster, const RingCatalog& catalog,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats) const {
  RentSurcharge surcharge;
  std::vector<Action> actions =
      RepairPass(cluster, catalog, policies, &surcharge);
  std::vector<Action> econ =
      EconomicPass(cluster, catalog, vnodes, policies, stats, &surcharge);
  actions.insert(actions.end(), econ.begin(), econ.end());
  return actions;
}

std::vector<Action> DecisionEngine::ProposeForPartitions(
    const Cluster& cluster,
    const std::vector<const Partition*>& partitions,
    const VNodeRegistry& vnodes, const std::vector<RingPolicy>& policies,
    const PartitionStatsMap& stats) const {
  // Same pass order as ProposeAll — repair over the whole shard, then
  // economic — so a single-shard plan reproduces it action for action.
  RentSurcharge surcharge;
  std::vector<Action> actions;
  for (const Partition* p : partitions) {
    ProposeRepair(cluster, *p, policies, &surcharge, &actions);
  }
  for (const Partition* p : partitions) {
    ProposeEconomic(cluster, *p, vnodes, policies, stats, &surcharge,
                    &actions);
  }
  return actions;
}

}  // namespace skute
