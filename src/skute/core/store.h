#ifndef SKUTE_CORE_STORE_H_
#define SKUTE_CORE_STORE_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "skute/chaos/fault_state.h"
#include "skute/cluster/cluster.h"
#include "skute/common/random.h"
#include "skute/common/result.h"
#include "skute/core/comm_stats.h"
#include "skute/core/decision.h"
#include "skute/core/net_stats.h"
#include "skute/core/executor.h"
#include "skute/core/policy.h"
#include "skute/core/query_routing.h"
#include "skute/core/sla.h"
#include "skute/core/vnode.h"
#include "skute/economy/proximity.h"
#include "skute/engine/epoch_pipeline.h"
#include "skute/io/durability_options.h"
#include "skute/ring/catalog.h"
#include "skute/storage/replica_store.h"

namespace skute {

/// Store-wide configuration.
struct SkuteOptions {
  DecisionParams decision;
  /// Epoch decision-plane tuning: worker threads and shard layout (see
  /// skute/engine/epoch_options.h for the determinism contract).
  EpochOptions epoch;
  /// The paper's 256 MB partition cap: a partition that grows past this
  /// splits into two.
  uint64_t max_partition_bytes = 256 * kMB;
  /// Seed for initial placement and executor shuffling.
  uint64_t seed = 42;
  /// Maintain real key-value bytes in per-server ReplicaStores when values
  /// are provided (examples/tests); synthetic puts never materialize data.
  bool track_real_data = true;
  /// Async durability plane: I/O offload pool, group-committed flushes,
  /// periodic checkpoints, log shipping. Defaults keep it all off.
  DurabilityOptions durability;
};

/// A tenant: a named application owning one ring per SLA level.
struct Application {
  AppId id = 0;
  std::string name;
  std::vector<RingId> rings;
};

/// Availability/utilization summary of one ring (see ReportRing).
struct RingReport {
  size_t partitions = 0;
  size_t vnodes = 0;
  size_t below_threshold = 0;  // partitions violating their SLA right now
  size_t lost = 0;             // partitions with zero live replicas
  double min_availability = 0.0;
  double mean_availability = 0.0;
  uint64_t logical_bytes = 0;        // one copy
  uint64_t replicated_bytes = 0;     // all copies
  uint64_t queries_this_epoch = 0;   // requested (routed) queries
  double rent_paid_this_epoch = 0.0;
  double rent_paid_total = 0.0;
};

/// \brief Skute: the scattered key-value store.
///
/// The facade wires together the cluster substrate, the virtual rings, the
/// economy and the Section II-C decision process. Epoch lifecycle:
///
/// \code
///   SkuteStore store(&cluster, opts);
///   AppId app = store.CreateApplication("crm");
///   RingId ring = *store.AttachRing(app, SlaLevel::ForReplicas(3, 1.0), 64);
///   for (;;) {
///     store.BeginEpoch();             // prices published (Eq. 1)
///     ... Put/Get/RouteQueries ...    // the epoch's traffic
///     store.EndEpoch();               // Eq. 5 balances, agents act
///   }
/// \endcode
class SkuteStore {
 public:
  SkuteStore(Cluster* cluster, const SkuteOptions& options);
  ~SkuteStore();

  SkuteStore(const SkuteStore&) = delete;
  SkuteStore& operator=(const SkuteStore&) = delete;

  // --- Tenancy ------------------------------------------------------------

  /// Registers an application; names need not be unique (ids are).
  AppId CreateApplication(std::string name);

  /// Attaches a ring with `initial_partitions` partitions at the given SLA
  /// level. Every partition receives one replica on a random online server
  /// (the paper's startup state); the repair pass grows each partition to
  /// its SLA from the first EndEpoch on.
  Result<RingId> AttachRing(AppId app, const SlaLevel& sla,
                            uint32_t initial_partitions);

  /// Sets the client geo-distribution of a ring (nullptr semantics: call
  /// with an empty mix to reset to uniform).
  Status SetClientMix(RingId ring, ClientMix mix);

  const Application* application(AppId id) const;
  size_t application_count() const { return apps_.size(); }
  const SlaLevel* sla_of_ring(RingId ring) const;

  // --- Data plane (real values) -------------------------------------------

  /// Writes a key-value pair: updates the object catalog, reserves storage
  /// on every replica server, stores the bytes in each replica's KvStore,
  /// and splits the partition if it crossed the cap.
  Status Put(RingId ring, std::string_view key, std::string_view value);

  /// Reads a key from the best live replica (proximity-weighted, then
  /// least-loaded) and accounts the query against that server's capacity.
  Result<std::string> Get(RingId ring, std::string_view key);

  /// Deletes a key from the catalog and all replicas.
  Status Delete(RingId ring, std::string_view key);

  /// The service plane's single-key read: Get plus the routing contract
  /// the synthetic batch path keeps. Every live-traffic request counts
  /// as requested in last_route(); replica selection debits the chosen
  /// server's ServeQueries capacity *before* the object lookup (a miss
  /// still consumed a routed query, exactly like a synthetic query whose
  /// key hash matches no object), and a partition with zero live
  /// replicas counts as lost. This is what makes served wire ops visible
  /// to the availability economics alongside RouteQueryBatch traffic.
  Result<std::string> ServeGet(RingId ring, std::string_view key);

  /// Put with a materialized synthetic value of `value_bytes` bytes: the
  /// real-data sibling of PutSynthetic. What the simulator's --real-data
  /// mode drives, so durable/file backends see genuine write traffic
  /// (WAL appends, flush watermarks, shippable deltas) without callers
  /// inventing payloads.
  Status PutSized(RingId ring, std::string_view key, uint32_t value_bytes);

  // --- Data plane (synthetic, simulator) ----------------------------------

  /// Catalog-only insert of `size_bytes` under the given key hash; same
  /// placement/accounting path as Put without materializing bytes.
  Status PutSynthetic(RingId ring, uint64_t key_hash, uint32_t size_bytes);

  // --- Query plane (aggregate, simulator) ----------------------------------

  /// Routes a whole epoch's query batch through the engine's RouteStage:
  /// the batch is sharded by partition (same shard layout as the decision
  /// plane) and fanned out over the worker pool, with per-shard
  /// accumulators merged in shard order so threads=1 and threads=N
  /// produce bit-for-bit identical routing counters. Returns this batch's
  /// outcome; the epoch's running totals are in last_route().
  RouteResult RouteQueryBatch(const QueryBatch& batch);

  /// Routes `count` queries for one partition across its live replicas
  /// (proximity-weighted largest-remainder shares, zero-weight replicas
  /// skipped) and accounts served/dropped per server. Serial convenience
  /// path for tests/benches; batch traffic goes through RouteQueryBatch.
  void RouteQueriesToPartition(Partition* partition, uint64_t count);

  /// Convenience: route by key hash.
  void RouteQueries(RingId ring, uint64_t key_hash, uint64_t count);

  // --- Epoch lifecycle ------------------------------------------------------
  //
  // Both calls are thin delegations into the EpochPipeline (skute/engine):
  // the store builds an EpochContext over its own state and the pipeline's
  // stages do all the work.

  /// Runs the kBegin stages: publishes prices (Eq. 1 via the board) and
  /// clears epoch counters.
  void BeginEpoch();

  /// Runs the kEnd stages: records Eq. 5 balances for every vnode, runs
  /// the repair and economic passes (sharded across
  /// EpochOptions::threads), executes the proposed actions, and returns
  /// the execution counters.
  ExecutorStats EndEpoch();

  Epoch epoch() const { return epoch_; }

  /// The epoch pipeline driving BeginEpoch/EndEpoch (exposed so callers
  /// can inspect stages or append custom ones).
  EpochPipeline& epoch_pipeline() { return pipeline_; }
  const EpochPipeline& epoch_pipeline() const { return pipeline_; }

  // --- Failure integration --------------------------------------------------

  /// Must be called after Cluster::FailServer: unregisters every replica
  /// the dead server held and deletes their agents. Partitions left with
  /// zero replicas are counted as lost.
  void HandleServerFailure(ServerId id);

  /// Chaos plane: every storage backend created from now on is wrapped
  /// in a FaultyBackend reading `state` / tallying into `counters`
  /// (both must outlive the store). Call before any data lands — i.e.
  /// before Initialize/AttachRing traffic — so the whole fleet is
  /// wrapped; backends created earlier stay fault-free.
  void EnableChaos(const chaos::StorageFaultState* state,
                   chaos::ChaosCounters* counters) {
    fault_state_ = state;
    chaos_counters_ = counters;
  }

  // --- Introspection ---------------------------------------------------------

  Cluster& cluster() { return *cluster_; }
  const Cluster& cluster() const { return *cluster_; }
  RingCatalog& catalog() { return catalog_; }
  const RingCatalog& catalog() const { return catalog_; }
  VNodeRegistry& vnodes() { return vnodes_; }
  const SkuteOptions& options() const { return options_; }

  /// Live replica count per server id (the Fig. 2 series).
  std::vector<uint32_t> VNodesPerServer() const;

  /// Per-(ring, server) queries served this epoch, indexed
  /// [ring][server] (the Fig. 4 series).
  std::vector<std::vector<uint64_t>> QueriesServedPerRingPerServer() const;

  RingReport ReportRing(RingId ring) const;

  uint64_t lost_partitions() const { return lost_partitions_; }
  uint64_t insert_failures() const { return insert_failures_; }
  const ExecutorStats& last_epoch_stats() const { return last_stats_; }

  /// Routing totals of the current/just-closed epoch (requested, routed,
  /// lost, route-stage wall time); reset at BeginEpoch. Covers both
  /// RouteQueryBatch and the serial RouteQueries* path.
  const RouteResult& last_route() const { return last_route_; }

  /// Per-partition traffic counters of the current/just-closed epoch
  /// (what the decision passes price against).
  const PartitionStatsMap& partition_stats() const { return stats_; }

  /// Communication overhead of the current/just-closed epoch and the
  /// lifetime totals (the paper's future-work metric).
  const CommStats& comm_this_epoch() const { return comm_epoch_; }
  const CommStats& comm_total() const { return comm_total_; }

  /// Service-plane counters of the current/just-closed epoch (what the
  /// skute/net acceptor and dispatcher did in this epoch's serve
  /// windows; all-zero without a server attached).
  const NetStats& net_this_epoch() const { return net_epoch_; }
  /// Lifetime service-plane totals including the open epoch.
  NetStats net_lifetime() const {
    NetStats total = net_total_;
    total.Accumulate(net_epoch_);
    return total;
  }
  /// The sink the net plane's acceptor/dispatcher write into.
  NetStats* mutable_net_stats() { return &net_epoch_; }

  /// The client geo-distribution of a ring (nullptr = uniform).
  const ClientMix* client_mix(RingId ring) const { return MixOf(ring); }

  /// Monotonic counter bumped whenever any replica placement or ring
  /// structure changes (splits, repairs, migrations, suicides, failures).
  /// Client-side routing caches (skute/core/router.h) revalidate against
  /// it — the paper's "O(1) DHT": one staleness check, no hop chasing.
  uint64_t placement_version() const { return placement_version_; }

  /// Aggregate I/O counters of every server's storage backends (zeroes
  /// when real-data tracking is off). What MetricsCollector surfaces so
  /// benches can price placement against real persistence cost.
  IoStats io_stats() const { return replica_data_.AggregateIo(); }

  /// The I/O offload pool (nullptr when durability.io_threads == 0).
  IoPool* io_pool() { return io_pool_.get(); }

  /// Partitions whose primary took log-shipped writes since the last
  /// durability-stage sync (empty unless durability.log_shipping).
  size_t dirty_partition_count() const { return dirty_partitions_.size(); }

  /// The policies vector the decision passes run against (rebuilt lazily).
  const std::vector<RingPolicy>& policies();

  /// Replaces the placement policy (default: EconomicPolicy with the
  /// store's decision parameters). Used by the baseline benches.
  void SetPlacementPolicy(std::unique_ptr<PlacementPolicy> policy);
  const PlacementPolicy& placement_policy() const { return *policy_; }

 private:
  struct RingInfo {
    AppId app = 0;
    SlaLevel sla;
    ClientMix mix;  // empty = uniform
  };

  /// The BackendFactory for one server's replica data: the server's
  /// BackendConfig, scoped to a per-server data subtree.
  BackendFactory FactoryForServer(ServerId id) const;

  Status ApplyUpsert(RingId ring, uint64_t key_hash, uint32_t size_bytes,
                     std::string_view key, const std::string* value);
  /// Best live replica of `p` for a single-key read: proximity-weighted,
  /// then least-loaded this epoch (the Get/ServeGet selection rule).
  Server* BestLiveReplica(const Partition& p, RingId ring,
                          VNodeId* vnode_out);
  Status ReserveOnReplicas(Partition* p, int64_t delta);
  void MaybeSplit(Partition* p);
  void PlaceSiblingReplicas(Partition* parent, Partition* sibling);
  void SplitRealData(const Partition& lower, const Partition& upper);
  void MoveSiblingData(PartitionId sibling, ServerId from, ServerId to);
  const ClientMix* MixOf(RingId ring) const;
  /// Builds the per-epoch context the pipeline stages run against.
  /// `policies` is the rebuilt per-ring policy view (nullptr for kBegin).
  EpochContext MakeEpochContext(const std::vector<RingPolicy>* policies);

  Cluster* cluster_;
  SkuteOptions options_;
  /// Chaos plane attachment (nullptr = no fault injection).
  const chaos::StorageFaultState* fault_state_ = nullptr;
  chaos::ChaosCounters* chaos_counters_ = nullptr;
  RingCatalog catalog_;
  VNodeRegistry vnodes_;
  std::unique_ptr<PlacementPolicy> policy_;
  /// Declared before replica_data_: backends Forget() themselves from the
  /// pool in their destructors, so the pool must outlive every backend.
  std::unique_ptr<IoPool> io_pool_;
  ReplicaDataMap replica_data_;
  ActionExecutor executor_;
  Rng rng_;
  EpochPipeline pipeline_;

  std::vector<Application> apps_;
  std::deque<RingInfo> ring_info_;  // stable addresses; indexed by RingId
  std::vector<RingPolicy> policies_;

  Epoch epoch_ = 0;
  PartitionStatsMap stats_;
  /// Log-shipping bookkeeping: partitions whose primary absorbed writes
  /// that secondaries have not seen yet (synced + cleared by the
  /// durability stage each epoch).
  std::unordered_set<PartitionId> dirty_partitions_;
  std::vector<uint64_t> ring_queries_epoch_;
  std::vector<double> ring_spend_epoch_;
  std::vector<double> ring_spend_total_;
  uint64_t lost_partitions_ = 0;
  uint64_t insert_failures_ = 0;
  ExecutorStats last_stats_;
  RouteResult last_route_;
  CommStats comm_epoch_;
  CommStats comm_total_;
  NetStats net_epoch_;
  NetStats net_total_;
  uint64_t placement_version_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CORE_STORE_H_
