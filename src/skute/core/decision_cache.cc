#include "skute/core/decision_cache.h"

#include "skute/economy/availability.h"

namespace skute {

namespace {

bool SameReplicas(const std::vector<ReplicaInfo>& a,
                  const std::vector<ReplicaInfo>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].server != b[i].server || a[i].vnode != b[i].vnode ||
        a[i].created_epoch != b[i].created_epoch) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ProposalCache::PrepareEpoch(PartitionId id_bound,
                                 uint64_t topology_version) {
  if (entries_.size() < id_bound) {
    entries_.resize(id_bound);
  }
  topology_version_ = topology_version;
}

double ProposalCache::AvailabilityOf(const Partition& p,
                                     const Cluster& cluster) {
  if (p.id() >= entries_.size()) {
    // Partition created after PrepareEpoch — cannot happen mid-pipeline,
    // but direct engine callers may race a split; stay exact, uncached.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return AvailabilityModel::OfPartition(p, cluster);
  }
  Entry& e = entries_[p.id()];
  if (e.valid && e.topology_version == topology_version_ &&
      SameReplicas(e.replicas, p.replicas())) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return e.avail;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  e.avail = AvailabilityModel::OfPartition(p, cluster);
  e.topology_version = topology_version_;
  e.replicas = p.replicas();
  e.valid = true;
  return e.avail;
}

}  // namespace skute
