#include "skute/core/query_routing.h"

#include <algorithm>
#include <cmath>

namespace skute {

std::vector<uint64_t> ApportionLargestRemainder(
    const std::vector<double>& weights, uint64_t count) {
  std::vector<uint64_t> shares(weights.size(), 0);
  if (count == 0 || weights.empty()) return shares;

  double total_weight = 0.0;
  for (double w : weights) {
    if (w > 0.0) total_weight += w;
  }
  if (total_weight <= 0.0) return shares;

  // Integer floors first; the fractional parts decide who rounds up.
  struct Remainder {
    double frac;
    size_t index;
  };
  std::vector<Remainder> remainders;
  remainders.reserve(weights.size());
  uint64_t assigned = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    const double ideal =
        static_cast<double>(count) * weights[i] / total_weight;
    const double floor = std::floor(ideal);
    shares[i] = static_cast<uint64_t>(floor);
    assigned += shares[i];
    remainders.push_back(Remainder{ideal - floor, i});
  }

  // Largest fractional part first; ties go to the lowest index so the
  // outcome is a pure function of (weights, count).
  std::sort(remainders.begin(), remainders.end(),
            [](const Remainder& a, const Remainder& b) {
              if (a.frac != b.frac) return a.frac > b.frac;
              return a.index < b.index;
            });
  // The remainder is < #positive-weight entries mathematically; the
  // clamp and modulo guard the floating-point edges where the floors
  // came out high or low.
  const uint64_t remainder = count > assigned ? count - assigned : 0;
  for (uint64_t k = 0; k < remainder; ++k) {
    ++shares[remainders[k % remainders.size()].index];
  }
  return shares;
}

void ComputePartitionRoute(Cluster* cluster, VNodeRegistry* vnodes,
                           const Partition& partition, uint64_t count,
                           const ClientMix* mix, RouteAccum* accum) {
  if (count == 0) return;
  // Requested traffic is accounted whether or not it can be routed
  // (query messages reach the partition's address either way).
  accum->requested += count;
  accum->query_msgs += count;
  accum->partition_queries.emplace_back(partition.id(), count);
  accum->ring_queries.emplace_back(partition.ring(), count);

  struct Target {
    Server* server;
    VirtualNode* vnode;
    double weight;
  };
  std::vector<Target> targets;
  for (const ReplicaInfo& r : partition.replicas()) {
    Server* s = cluster->server(r.server);
    if (s == nullptr || !s->online()) continue;
    // A chaos net-partition makes the replica mix-unreachable: weight 0,
    // same as a client mix with no proximity to it. If every live
    // replica is partitioned, the uniform fallback below still lands the
    // queries (clients retry blindly) — the partition is degraded, not
    // lost.
    const double g =
        s->net_partitioned()
            ? 0.0
            : (mix == nullptr ? 1.0
                              : NormalizedProximity(*mix, s->location()));
    targets.push_back(Target{s, vnodes->Find(r.vnode), g});
  }
  if (targets.empty()) {  // no live replica: the queries are lost
    accum->lost += count;
    return;
  }

  std::vector<double> weights;
  weights.reserve(targets.size());
  bool any_positive = false;
  for (const Target& t : targets) {
    weights.push_back(t.weight);
    if (t.weight > 0.0) any_positive = true;
  }
  // A zero-weight replica is one the client mix says is unreachable; it
  // must not absorb traffic. When every live replica is unreachable the
  // queries still have to land somewhere: fall back to uniform shares.
  if (!any_positive) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }

  const std::vector<uint64_t> shares =
      ApportionLargestRemainder(weights, count);
  for (size_t i = 0; i < targets.size(); ++i) {
    if (shares[i] == 0) continue;
    accum->shares.push_back(
        RouteShare{targets[i].server, targets[i].vnode, shares[i]});
  }
}

namespace {

/// Counter merges of one accumulator — everything ApplyRouteAccum does
/// except capacity admission. Shared by the sequential and batched
/// appliers so their accounting can never drift apart.
void MergeAccumCounters(const RouteAccum& accum, PartitionStatsMap* stats,
                        std::vector<uint64_t>* ring_queries_epoch,
                        CommStats* comm_epoch, RouteResult* result) {
  for (const auto& [partition, queries] : accum.partition_queries) {
    (*stats)[partition].queries += queries;
  }
  for (const auto& [ring, queries] : accum.ring_queries) {
    if (ring < ring_queries_epoch->size()) {
      (*ring_queries_epoch)[ring] += queries;
    }
  }
  comm_epoch->query_msgs += accum.query_msgs;
  result->requested += accum.requested;
  result->routed += accum.requested - accum.lost;
  result->lost += accum.lost;
}

}  // namespace

void ApplyRouteAccum(const RouteAccum& accum, PartitionStatsMap* stats,
                     std::vector<uint64_t>* ring_queries_epoch,
                     CommStats* comm_epoch, RouteResult* result) {
  MergeAccumCounters(accum, stats, ring_queries_epoch, comm_epoch, result);
  for (const RouteShare& s : accum.shares) {
    const uint64_t served = s.server->ServeQueries(s.share);
    if (s.vnode != nullptr) {
      s.vnode->queries_routed += s.share;
      s.vnode->queries_served += served;
    }
  }
}

void ApplyRouteAccumsBatched(const std::vector<RouteAccum>& accums,
                             PartitionStatsMap* stats,
                             std::vector<uint64_t>* ring_queries_epoch,
                             CommStats* comm_epoch, RouteResult* result) {
  // Counter merges, in shard order (identical to the sequential loop).
  for (const RouteAccum& accum : accums) {
    MergeAccumCounters(accum, stats, ring_queries_epoch, comm_epoch,
                       result);
  }

  // Pass 1: total demand per server, servers in first-appearance order.
  struct ServerDemand {
    Server* server = nullptr;
    uint64_t total = 0;
    uint64_t granted = 0;
  };
  std::vector<ServerDemand> demands;
  std::unordered_map<Server*, size_t> index;
  for (const RouteAccum& accum : accums) {
    for (const RouteShare& s : accum.shares) {
      const auto [it, inserted] = index.try_emplace(s.server, demands.size());
      if (inserted) demands.push_back(ServerDemand{s.server, 0, 0});
      demands[it->second].total += s.share;
    }
  }

  // One capacity debit per server: served and dropped counts equal the
  // share-by-share sequence because ServeQueries is greedy.
  for (ServerDemand& d : demands) {
    d.granted = d.server->ServeQueries(d.total);
  }

  // Pass 2: hand each server's grant out front-to-back over its shares —
  // the greedy prefix, exactly what sequential admission produced.
  for (const RouteAccum& accum : accums) {
    for (const RouteShare& s : accum.shares) {
      ServerDemand& d = demands[index.at(s.server)];
      const uint64_t served = std::min(s.share, d.granted);
      d.granted -= served;
      if (s.vnode != nullptr) {
        s.vnode->queries_routed += s.share;
        s.vnode->queries_served += served;
      }
    }
  }
}

}  // namespace skute
