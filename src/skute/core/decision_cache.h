#ifndef SKUTE_CORE_DECISION_CACHE_H_
#define SKUTE_CORE_DECISION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/ring/partition.h"

namespace skute {

/// Per-partition balance-streak flags, computed by RecordBalancesStage
/// while it already holds every vnode in hand, and consumed by
/// ProposeEconomic's dirty check so quiescent partitions skip the vnode
/// registry lookups entirely. Indexed by PartitionId; an entry without
/// kStreakFlagsValid (or past the table) makes the engine fall back to
/// its inline scan, so the table is an accelerator, never a requirement.
inline constexpr uint8_t kStreakFlagsValid = 1;
/// Some replica vnode holds a full negative streak (cost-cutting may act).
inline constexpr uint8_t kStreakNegative = 2;
/// Some replica vnode holds a full positive streak (growth may act).
inline constexpr uint8_t kStreakPositive = 4;

/// Cumulative decision-plane counters, assembled by EconomicPolicy from
/// the CandidateContext and ProposalCache it owns. All values are
/// deterministic for any thread count: they are sums over per-shard work
/// whose content does not depend on the shard-to-thread assignment.
struct DecisionPlaneStats {
  uint64_t epochs_prepared = 0;
  uint64_t select_calls = 0;       ///< Eq. 3 selections answered
  uint64_t candidates_scored = 0;  ///< candidates actually evaluated
  uint64_t full_scan_selects = 0;  ///< exact-fallback full scans
  uint64_t partitions_clean = 0;   ///< economic pass: quiescent, skipped
  uint64_t partitions_dirty = 0;   ///< economic pass: ran the decisions
  uint64_t avail_cache_hits = 0;
  uint64_t avail_cache_misses = 0;
};

/// \brief Cross-epoch cache of per-partition decision inputs — the
/// "dirty partition" half of the decision-plane optimization.
///
/// The expensive per-partition input both proposal passes recompute
/// every epoch is the Eq. 2 availability, a pure function of the replica
/// set and the replica servers' (online, confidence, location) state.
/// Confidence and location are immutable; online flips and membership
/// changes bump Cluster::topology_version(); replica-set changes show in
/// the replicas vector itself. An entry is therefore reusable exactly
/// when (topology_version, replicas) both match — the same idiom
/// ShardPlanCache uses with placement_version, keyed one level finer.
///
/// Thread-safety: PrepareEpoch is called serially (the proposal stage's
/// prepare step) before the shard fan-out; after that each partition id
/// is touched by exactly one shard, so entry accesses are disjoint.
/// Counters are relaxed atomics (sums are thread-count independent).
class ProposalCache {
 public:
  ProposalCache() = default;
  ProposalCache(const ProposalCache&) = delete;
  ProposalCache& operator=(const ProposalCache&) = delete;

  /// Grows the entry table to cover ids [0, id_bound) and snapshots the
  /// cluster's topology version for this epoch's validity checks.
  void PrepareEpoch(PartitionId id_bound, uint64_t topology_version);

  /// Eq. 2 availability of `p`'s live replica set, reusing last epoch's
  /// value when the inputs are provably unchanged; always bit-identical
  /// to AvailabilityModel::OfPartition(p, cluster).
  double AvailabilityOf(const Partition& p, const Cluster& cluster);

  void CountClean() { clean_.fetch_add(1, std::memory_order_relaxed); }
  void CountDirty() { dirty_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t clean_skips() const {
    return clean_.load(std::memory_order_relaxed);
  }
  uint64_t dirty_runs() const {
    return dirty_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    bool valid = false;
    uint64_t topology_version = 0;
    double avail = 0.0;
    std::vector<ReplicaInfo> replicas;  ///< snapshot the value was for
  };

  std::vector<Entry> entries_;
  uint64_t topology_version_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> clean_{0};
  std::atomic<uint64_t> dirty_{0};
};

}  // namespace skute

#endif  // SKUTE_CORE_DECISION_CACHE_H_
