#include "skute/core/policy.h"

#include <algorithm>

namespace skute {

void EconomicPolicy::BeginProposalEpoch(
    const Cluster& cluster, const RingCatalog& catalog,
    const std::vector<RingPolicy>& policies,
    const std::vector<uint8_t>* streak_flags,
    const IndexedRunner& run_indexed) {
  const DecisionParams& params = engine_.params();
  ++epochs_prepared_;
  pctx_ = ProposeContext();

  if (params.use_candidate_context) {
    // Distinct client mixes this epoch's selections can see: every ring
    // policy's mix, plus the uniform (nullptr) mix repair/migration use
    // for rings without geographic information.
    std::vector<const ClientMix*> mixes;
    mixes.push_back(nullptr);
    for (const RingPolicy& p : policies) {
      if (p.mix != nullptr &&
          std::find(mixes.begin(), mixes.end(), p.mix) == mixes.end()) {
        mixes.push_back(p.mix);
      }
    }
    candidates_.Build(cluster, params.candidate, mixes, run_indexed);
    pctx_.candidates = &candidates_;
  }

  if (params.use_proposal_cache) {
    avail_cache_.PrepareEpoch(catalog.partition_id_bound(),
                              cluster.topology_version());
    pctx_.avail_cache = &avail_cache_;
    pctx_.streak_flags = streak_flags;
  }
}

DecisionPlaneStats EconomicPolicy::decision_stats() const {
  DecisionPlaneStats s;
  s.epochs_prepared = epochs_prepared_;
  const CandidateContext::Counters& c = candidates_.counters();
  s.select_calls = c.select_calls.load(std::memory_order_relaxed);
  s.candidates_scored =
      c.candidates_scored.load(std::memory_order_relaxed);
  s.full_scan_selects = c.full_scans.load(std::memory_order_relaxed);
  s.partitions_clean = avail_cache_.clean_skips();
  s.partitions_dirty = avail_cache_.dirty_runs();
  s.avail_cache_hits = avail_cache_.hits();
  s.avail_cache_misses = avail_cache_.misses();
  return s;
}

}  // namespace skute
