#include "skute/core/executor.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>

#include "skute/economy/availability.h"
#include "skute/economy/candidate.h"

namespace skute {

void ExecutorStats::Accumulate(const ExecutorStats& other) {
  replications += other.replications;
  migrations += other.migrations;
  suicides += other.suicides;
  blocked_bandwidth += other.blocked_bandwidth;
  blocked_storage += other.blocked_storage;
  aborted_stale += other.aborted_stale;
  bytes_replicated += other.bytes_replicated;
  bytes_migrated += other.bytes_migrated;
  snapshot_bytes += other.snapshot_bytes;
  delta_bytes += other.delta_bytes;
}

TransferResult ActionExecutor::CopyRealData(ServerId from, ServerId to,
                                            PartitionId pid) {
  if (replica_data_ == nullptr) return {};
  ReplicaStore* src = replica_data_->Find(from);
  if (src == nullptr || src->Find(pid) == nullptr) {
    return {};  // synthetic partition: sizes only, nothing to copy
  }
  // The planner pre-created every transfer target's store; Find (a pure
  // lookup) keeps this path safe on a worker thread.
  ReplicaStore* dst = replica_data_->Find(to);
  if (dst == nullptr) return {};
  auto streamed = dst->CopyFrom(*src, pid);
  if (streamed.ok()) return *streamed;
  TransferResult failed;
  failed.failed = true;  // source fault / torn stream: action must block
  return failed;
}

TransferResult ActionExecutor::MoveRealData(ServerId from, ServerId to,
                                            PartitionId pid) {
  if (replica_data_ == nullptr) return {};
  ReplicaStore* src = replica_data_->Find(from);
  if (src == nullptr || src->Find(pid) == nullptr) {
    return {};
  }
  ReplicaStore* dst = replica_data_->Find(to);
  if (dst == nullptr) return {};
  auto streamed = dst->MoveFrom(src, pid);
  if (streamed.ok()) return *streamed;
  TransferResult failed;
  failed.failed = true;
  return failed;
}

void ActionExecutor::DropRealData(ServerId server, PartitionId pid) {
  if (replica_data_ == nullptr) return;
  ReplicaStore* store = replica_data_->Find(server);
  if (store == nullptr) return;
  (void)store->Drop(pid);
}

ActionExecutor::Outcome ActionExecutor::ApplyReplicate(
    const Action& a, VNodeId vid, Epoch epoch, ExecGroupResult* out) {
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr) return Outcome::kStale;
  Server* target = cluster_->server(a.target);
  if (target == nullptr || !target->online()) return Outcome::kStale;
  if (p->HasReplicaOn(a.target)) return Outcome::kStale;

  // Pick the replication source: the proposed one when still usable,
  // otherwise any live replica with replication budget.
  Server* source = nullptr;
  if (a.source != kInvalidServer && p->HasReplicaOn(a.source)) {
    Server* s = cluster_->server(a.source);
    if (s != nullptr && s->online() && s->CanStartReplication()) source = s;
  }
  if (source == nullptr) {
    for (const ReplicaInfo& r : p->replicas()) {
      Server* s = cluster_->server(r.server);
      if (s != nullptr && s->online() && s->CanStartReplication()) {
        source = s;
        break;
      }
    }
  }
  if (source == nullptr) return Outcome::kBlockedBandwidth;
  if (!target->CanStartReplication()) return Outcome::kBlockedBandwidth;

  const uint64_t bytes = p->bytes();
  if (!target->ReserveStorage(bytes).ok()) return Outcome::kBlockedStorage;

  source->ChargeReplication(bytes);
  target->ChargeReplication(bytes);

  // Stream the real bytes BEFORE registering the replica: a faulted
  // source (torn snapshot, failed import) must leave the catalog
  // untouched — the action blocks and is re-proposed next epoch, it
  // never yields a registered-but-corrupt replica. The partial
  // destination data is dropped; both servers keep the bandwidth charge
  // for the attempt, the storage reservation is returned.
  const TransferResult copied = CopyRealData(source->id(), a.target, p->id());
  if (copied.failed) {
    DropRealData(a.target, p->id());
    (void)target->ReleaseStorage(bytes);
    return Outcome::kBlockedBandwidth;
  }
  (copied.delta ? out->stats.delta_bytes : out->stats.snapshot_bytes) +=
      copied.bytes;

  // AddReplica cannot fail: HasReplicaOn was checked above. The vnode id
  // was pre-allocated by the planner; the registry insert is deferred to
  // the serial commit (nothing this epoch reads a vnode born this epoch).
  (void)p->AddReplica(a.target, vid, epoch);
  out->creates.push_back(
      PendingVNodeCreate{vid, p->id(), p->ring(), a.target, epoch});

  ++out->stats.replications;
  out->stats.bytes_replicated += bytes;
  return Outcome::kApplied;
}

ActionExecutor::Outcome ActionExecutor::ApplyMigrate(
    const Action& a, const std::vector<RingPolicy>& policies, Epoch epoch,
    ExecGroupResult* out) {
  VirtualNode* v = vnodes_->Find(a.vnode);
  if (v == nullptr || v->server != a.source) return Outcome::kStale;
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr || !p->HasReplicaOn(a.source)) return Outcome::kStale;
  Server* source = cluster_->server(a.source);
  Server* target = cluster_->server(a.target);
  if (source == nullptr || !source->online()) return Outcome::kStale;
  if (target == nullptr || !target->online()) return Outcome::kStale;
  if (p->HasReplicaOn(a.target)) return Outcome::kStale;

  // Re-validate availability against live state: the move must not take
  // the partition below its threshold (or worsen an already-low state).
  const RingPolicy& policy = policies[p->ring()];
  const double avail_now = AvailabilityModel::OfPartition(*p, *cluster_);
  const double avail_after = AvailabilityModel::OfServerIdsWith(
      *cluster_, ReplicaServerSet(*p, /*moving_from=*/a.source), a.target);
  const double required = std::min(policy.min_availability, avail_now);
  if (avail_after < required) return Outcome::kStale;

  if (!source->CanStartMigration() || !target->CanStartMigration()) {
    return Outcome::kBlockedBandwidth;
  }
  const uint64_t bytes = p->bytes();
  if (!target->ReserveStorage(bytes).ok()) return Outcome::kBlockedStorage;

  source->ChargeMigration(bytes);
  target->ChargeMigration(bytes);

  // Move the real bytes BEFORE touching the catalog: a faulted transfer
  // leaves the source replica intact and authoritative (MoveFrom only
  // wipes the source after a successful import), so the action simply
  // blocks. Partial destination data is dropped; the bandwidth charge
  // for the attempt stands, the reservation is returned.
  const TransferResult moved = MoveRealData(a.source, a.target, p->id());
  if (moved.failed) {
    DropRealData(a.target, p->id());
    (void)target->ReleaseStorage(bytes);
    return Outcome::kBlockedBandwidth;
  }
  (void)source->ReleaseStorage(bytes);

  (void)p->RemoveReplica(a.source);
  (void)p->AddReplica(a.target, v->id, epoch);
  v->server = a.target;
  v->balance.Reset();
  (moved.delta ? out->stats.delta_bytes : out->stats.snapshot_bytes) +=
      moved.bytes;

  ++out->stats.migrations;
  out->stats.bytes_migrated += bytes;
  return Outcome::kApplied;
}

ActionExecutor::Outcome ActionExecutor::ApplySuicide(
    const Action& a, const std::vector<RingPolicy>& policies,
    ExecGroupResult* out) {
  VirtualNode* v = vnodes_->Find(a.vnode);
  if (v == nullptr || v->server != a.source) return Outcome::kStale;
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr || !p->HasReplicaOn(a.source)) return Outcome::kStale;
  if (p->replica_count() <= 1) return Outcome::kStale;

  // Re-validate: the partition must stay available without this replica
  // (two concurrent suicides may have individually looked safe).
  const RingPolicy& policy = policies[p->ring()];
  const double avail_without = AvailabilityModel::OfPartitionWithout(
      *p, *cluster_, a.source);
  if (avail_without < policy.min_availability) return Outcome::kStale;

  Server* server = cluster_->server(a.source);
  if (server != nullptr && server->online()) {
    (void)server->ReleaseStorage(p->bytes());
  }
  // The replica set mutates eagerly (it carries re-validation for the
  // rest of the group); the registry erase is deferred to the commit.
  (void)p->RemoveReplica(a.source);
  out->removes.push_back(a.vnode);
  DropRealData(a.source, p->id());

  ++out->stats.suicides;
  return Outcome::kApplied;
}

void ActionExecutor::ApplyIndexed(const ExecutionPlan& plan, size_t index,
                                  const std::vector<RingPolicy>& policies,
                                  Epoch epoch, ExecGroupResult* out) {
  const Action& a = plan.actions[index];
  Outcome outcome = Outcome::kStale;
  switch (a.type) {
    case ActionType::kNone:
      return;
    case ActionType::kReplicate:
      outcome =
          ApplyReplicate(a, plan.replicate_vids[index], epoch, out);
      break;
    case ActionType::kMigrate:
      outcome = ApplyMigrate(a, policies, epoch, out);
      break;
    case ActionType::kSuicide:
      outcome = ApplySuicide(a, policies, out);
      break;
  }
  switch (outcome) {
    case Outcome::kApplied:
      break;
    case Outcome::kBlockedBandwidth:
      ++out->stats.blocked_bandwidth;
      break;
    case Outcome::kBlockedStorage:
      ++out->stats.blocked_storage;
      break;
    case Outcome::kStale:
      ++out->stats.aborted_stale;
      break;
  }
}

ExecutionPlan ActionExecutor::Plan(std::vector<Action> actions, Rng* rng) {
  ExecutionPlan plan;
  rng->Shuffle(&actions);
  plan.actions = std::move(actions);
  const size_t n = plan.actions.size();
  plan.replicate_vids.assign(n, kInvalidVNode);
  if (n == 0) return plan;

  // Union-find over action indices. Two actions conflict when their
  // footprints — source + target + every server hosting a replica of the
  // touched partition — intersect, or when they touch the same partition
  // (belt and braces for partitions whose replica set is empty at plan
  // time).
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) {
    const size_t ra = find(a);
    const size_t rb = find(b);
    // Root at the lower index so group numbering stays first-touch.
    if (ra < rb) {
      parent[rb] = ra;
    } else if (rb < ra) {
      parent[ra] = rb;
    }
  };

  std::unordered_map<ServerId, size_t> server_owner;
  std::unordered_map<PartitionId, size_t> partition_owner;
  std::vector<char> in_residual(n, 0);
  std::vector<char> skip(n, 0);

  for (size_t i = 0; i < n; ++i) {
    const Action& a = plan.actions[i];
    if (a.type == ActionType::kNone) {
      skip[i] = 1;
      continue;
    }
    if (a.type == ActionType::kReplicate) {
      // Ids allocate in shuffled order whatever the thread count; a
      // replication that later fails admission just wastes its id.
      plan.replicate_vids[i] = catalog_->AllocateVNodeId();
    }

    bool any_footprint = false;
    const auto touch_server = [&](ServerId s) {
      if (s == kInvalidServer) return;
      any_footprint = true;
      const auto [it, inserted] = server_owner.try_emplace(s, i);
      if (!inserted) unite(i, it->second);
    };
    const auto touch_partition = [&](PartitionId pid) {
      const Partition* p = catalog_->partition(pid);
      if (p == nullptr) return;
      any_footprint = true;
      const auto [it, inserted] = partition_owner.try_emplace(p->id(), i);
      if (!inserted) unite(i, it->second);
      for (const ReplicaInfo& r : p->replicas()) touch_server(r.server);
    };
    touch_server(a.source);
    touch_server(a.target);
    touch_partition(a.partition);
    // A malformed proposal may name a vnode whose live server/partition
    // disagree with a.source/a.partition; ApplyMigrate/ApplySuicide read
    // that vnode's state regardless, so its real home joins the
    // footprint too (no-op for well-formed proposals).
    if (a.vnode != kInvalidVNode &&
        (a.type == ActionType::kMigrate ||
         a.type == ActionType::kSuicide)) {
      if (const VirtualNode* v = vnodes_->Find(a.vnode)) {
        touch_server(v->server);
        touch_partition(v->partition);
      }
    }
    if (!any_footprint) {
      // No partition, no server: nothing to key concurrency on. The
      // residual serial group applies these on the commit thread.
      in_residual[i] = 1;
      plan.residual.push_back(i);
    }
  }

  // Groups in first-touch order: the group index is the order of its
  // lowest member, and members stay in shuffled order.
  std::unordered_map<size_t, size_t> root_to_group;
  for (size_t i = 0; i < n; ++i) {
    if (skip[i] || in_residual[i]) continue;
    const size_t root = find(i);
    const auto [it, inserted] =
        root_to_group.try_emplace(root, plan.groups.size());
    if (inserted) plan.groups.emplace_back();
    plan.groups[it->second].push_back(i);
  }
  for (const std::vector<size_t>& g : plan.groups) {
    plan.largest_group = std::max(plan.largest_group, g.size());
  }

  // Pre-create the ReplicaStore of every transfer target on this (serial)
  // thread: workers may then only Find — the per-server hash map is never
  // grown concurrently.
  if (replica_data_ != nullptr) {
    for (const Action& a : plan.actions) {
      if (a.type != ActionType::kReplicate &&
          a.type != ActionType::kMigrate) {
        continue;
      }
      if (a.target == kInvalidServer ||
          cluster_->server(a.target) == nullptr) {
        continue;
      }
      (void)replica_data_->For(a.target);
    }
  }
  return plan;
}

ExecGroupResult ActionExecutor::ApplyGroup(
    const ExecutionPlan& plan, size_t group,
    const std::vector<RingPolicy>& policies, Epoch epoch) {
  ExecGroupResult out;
  for (const size_t index : plan.groups[group]) {
    ApplyIndexed(plan, index, policies, epoch, &out);
  }
  return out;
}

ExecutorStats ActionExecutor::Commit(const ExecutionPlan& plan,
                                     std::vector<ExecGroupResult> results,
                                     const std::vector<RingPolicy>& policies,
                                     Epoch epoch) {
  // Residual serial group first computes like any other (it conflicts
  // with nothing by construction), then everything merges in group order.
  ExecGroupResult residual;
  for (const size_t index : plan.residual) {
    ApplyIndexed(plan, index, policies, epoch, &residual);
  }
  results.push_back(std::move(residual));

  ExecutorStats total;
  for (const ExecGroupResult& r : results) {
    total.Accumulate(r.stats);
    for (const PendingVNodeCreate& c : r.creates) {
      vnodes_->Create(c.id, c.partition, c.ring, c.server, c.epoch);
    }
    for (const VNodeId id : r.removes) {
      (void)vnodes_->Remove(id);
    }
  }
  return total;
}

ExecutorStats ActionExecutor::Apply(std::vector<Action> actions,
                                    const std::vector<RingPolicy>& policies,
                                    Epoch epoch, Rng* rng) {
  const ExecutionPlan plan = Plan(std::move(actions), rng);
  std::vector<ExecGroupResult> results(plan.groups.size());
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    results[g] = ApplyGroup(plan, g, policies, epoch);
  }
  return Commit(plan, std::move(results), policies, epoch);
}

}  // namespace skute
