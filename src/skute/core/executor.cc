#include "skute/core/executor.h"

#include <algorithm>

#include "skute/economy/availability.h"

namespace skute {

void ExecutorStats::Accumulate(const ExecutorStats& other) {
  replications += other.replications;
  migrations += other.migrations;
  suicides += other.suicides;
  blocked_bandwidth += other.blocked_bandwidth;
  blocked_storage += other.blocked_storage;
  aborted_stale += other.aborted_stale;
  bytes_replicated += other.bytes_replicated;
  bytes_migrated += other.bytes_migrated;
  snapshot_bytes += other.snapshot_bytes;
}

uint64_t ActionExecutor::CopyRealData(ServerId from, ServerId to,
                                      PartitionId pid) {
  if (replica_data_ == nullptr) return 0;
  ReplicaStore* src = replica_data_->Find(from);
  if (src == nullptr || src->Find(pid) == nullptr) {
    return 0;  // synthetic partition: sizes only, nothing to copy
  }
  auto streamed = replica_data_->For(to).CopyFrom(*src, pid);
  return streamed.ok() ? *streamed : 0;
}

uint64_t ActionExecutor::MoveRealData(ServerId from, ServerId to,
                                      PartitionId pid) {
  if (replica_data_ == nullptr) return 0;
  ReplicaStore* src = replica_data_->Find(from);
  if (src == nullptr || src->Find(pid) == nullptr) {
    return 0;
  }
  auto streamed = replica_data_->For(to).MoveFrom(src, pid);
  return streamed.ok() ? *streamed : 0;
}

void ActionExecutor::DropRealData(ServerId server, PartitionId pid) {
  if (replica_data_ == nullptr) return;
  ReplicaStore* store = replica_data_->Find(server);
  if (store == nullptr) return;
  (void)store->Drop(pid);
}

ActionExecutor::Outcome ActionExecutor::ApplyReplicate(const Action& a,
                                                       Epoch epoch,
                                                       ExecutorStats* st) {
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr) return Outcome::kStale;
  Server* target = cluster_->server(a.target);
  if (target == nullptr || !target->online()) return Outcome::kStale;
  if (p->HasReplicaOn(a.target)) return Outcome::kStale;

  // Pick the replication source: the proposed one when still usable,
  // otherwise any live replica with replication budget.
  Server* source = nullptr;
  if (a.source != kInvalidServer && p->HasReplicaOn(a.source)) {
    Server* s = cluster_->server(a.source);
    if (s != nullptr && s->online() && s->CanStartReplication()) source = s;
  }
  if (source == nullptr) {
    for (const ReplicaInfo& r : p->replicas()) {
      Server* s = cluster_->server(r.server);
      if (s != nullptr && s->online() && s->CanStartReplication()) {
        source = s;
        break;
      }
    }
  }
  if (source == nullptr) return Outcome::kBlockedBandwidth;
  if (!target->CanStartReplication()) return Outcome::kBlockedBandwidth;

  const uint64_t bytes = p->bytes();
  if (!target->ReserveStorage(bytes).ok()) return Outcome::kBlockedStorage;

  source->ChargeReplication(bytes);
  target->ChargeReplication(bytes);

  const VNodeId vid = catalog_->AllocateVNodeId();
  // AddReplica cannot fail: HasReplicaOn was checked above.
  (void)p->AddReplica(a.target, vid, epoch);
  vnodes_->Create(vid, p->id(), p->ring(), a.target, epoch);
  st->snapshot_bytes += CopyRealData(source->id(), a.target, p->id());

  ++st->replications;
  st->bytes_replicated += bytes;
  return Outcome::kApplied;
}

ActionExecutor::Outcome ActionExecutor::ApplyMigrate(
    const Action& a, const std::vector<RingPolicy>& policies, Epoch epoch,
    ExecutorStats* st) {
  VirtualNode* v = vnodes_->Find(a.vnode);
  if (v == nullptr || v->server != a.source) return Outcome::kStale;
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr || !p->HasReplicaOn(a.source)) return Outcome::kStale;
  Server* source = cluster_->server(a.source);
  Server* target = cluster_->server(a.target);
  if (source == nullptr || !source->online()) return Outcome::kStale;
  if (target == nullptr || !target->online()) return Outcome::kStale;
  if (p->HasReplicaOn(a.target)) return Outcome::kStale;

  // Re-validate availability against live state: the move must not take
  // the partition below its threshold (or worsen an already-low state).
  const RingPolicy& policy = policies[p->ring()];
  const double avail_now = AvailabilityModel::OfPartition(*p, *cluster_);
  const double avail_after = AvailabilityModel::OfServerIdsWith(
      *cluster_, ReplicaServerSet(*p, /*moving_from=*/a.source), a.target);
  const double required = std::min(policy.min_availability, avail_now);
  if (avail_after < required) return Outcome::kStale;

  if (!source->CanStartMigration() || !target->CanStartMigration()) {
    return Outcome::kBlockedBandwidth;
  }
  const uint64_t bytes = p->bytes();
  if (!target->ReserveStorage(bytes).ok()) return Outcome::kBlockedStorage;

  (void)source->ReleaseStorage(bytes);
  source->ChargeMigration(bytes);
  target->ChargeMigration(bytes);

  (void)p->RemoveReplica(a.source);
  (void)p->AddReplica(a.target, v->id, epoch);
  v->server = a.target;
  v->balance.Reset();
  st->snapshot_bytes += MoveRealData(a.source, a.target, p->id());

  ++st->migrations;
  st->bytes_migrated += bytes;
  return Outcome::kApplied;
}

ActionExecutor::Outcome ActionExecutor::ApplySuicide(
    const Action& a, const std::vector<RingPolicy>& policies,
    ExecutorStats* st) {
  VirtualNode* v = vnodes_->Find(a.vnode);
  if (v == nullptr || v->server != a.source) return Outcome::kStale;
  Partition* p = catalog_->partition(a.partition);
  if (p == nullptr || !p->HasReplicaOn(a.source)) return Outcome::kStale;
  if (p->replica_count() <= 1) return Outcome::kStale;

  // Re-validate: the partition must stay available without this replica
  // (two concurrent suicides may have individually looked safe).
  const RingPolicy& policy = policies[p->ring()];
  const double avail_without = AvailabilityModel::OfPartitionWithout(
      *p, *cluster_, a.source);
  if (avail_without < policy.min_availability) return Outcome::kStale;

  Server* server = cluster_->server(a.source);
  if (server != nullptr && server->online()) {
    (void)server->ReleaseStorage(p->bytes());
  }
  (void)p->RemoveReplica(a.source);
  (void)vnodes_->Remove(a.vnode);
  DropRealData(a.source, p->id());

  ++st->suicides;
  return Outcome::kApplied;
}

ExecutorStats ActionExecutor::Apply(std::vector<Action> actions,
                                    const std::vector<RingPolicy>& policies,
                                    Epoch epoch, Rng* rng) {
  ExecutorStats st;
  rng->Shuffle(&actions);
  for (const Action& a : actions) {
    Outcome outcome = Outcome::kStale;
    switch (a.type) {
      case ActionType::kNone:
        continue;
      case ActionType::kReplicate:
        outcome = ApplyReplicate(a, epoch, &st);
        break;
      case ActionType::kMigrate:
        outcome = ApplyMigrate(a, policies, epoch, &st);
        break;
      case ActionType::kSuicide:
        outcome = ApplySuicide(a, policies, &st);
        break;
    }
    switch (outcome) {
      case Outcome::kApplied:
        break;
      case Outcome::kBlockedBandwidth:
        ++st.blocked_bandwidth;
        break;
      case Outcome::kBlockedStorage:
        ++st.blocked_storage;
        break;
      case Outcome::kStale:
        ++st.aborted_stale;
        break;
    }
  }
  return st;
}

}  // namespace skute
