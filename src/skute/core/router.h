#ifndef SKUTE_CORE_ROUTER_H_
#define SKUTE_CORE_ROUTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "skute/common/result.h"
#include "skute/core/store.h"

namespace skute {

/// \brief Client-side routing table — the paper's "O(1) DHT": a client
/// hashes the key and knows the owning partition and its replica set in
/// one step, with no hop chasing.
///
/// The router snapshots every ring's token table and replica lists and
/// revalidates the whole snapshot against SkuteStore::placement_version()
/// on each lookup: one integer comparison on the hot path, a full refresh
/// only after the placement actually changed (epoch-granular in
/// practice). This mirrors how Dynamo-style clients cache membership and
/// reconcile lazily.
class Router {
 public:
  /// The store must outlive the router.
  explicit Router(SkuteStore* store) : store_(store) {}

  /// Where a key lives: the partition and its replica servers, as of the
  /// snapshot's placement version.
  struct Route {
    PartitionId partition = kInvalidPartition;
    std::vector<ServerId> replicas;
  };

  /// Routes a key (hashes it, then LookupHash).
  Result<Route> Lookup(RingId ring, std::string_view key);

  /// Routes a key hash directly.
  Result<Route> LookupHash(RingId ring, uint64_t key_hash);

  /// Lookups served from the cached snapshot without a refresh.
  uint64_t cache_hits() const { return cache_hits_; }
  /// Snapshot rebuilds triggered by placement-version changes.
  uint64_t refreshes() const { return refreshes_; }
  /// The placement version the current snapshot reflects.
  uint64_t snapshot_version() const { return seen_version_; }

 private:
  struct RingTable {
    std::vector<uint64_t> begins;  // sorted partition range starts
    std::vector<Route> routes;     // parallel to begins
  };

  void RefreshSnapshot();

  SkuteStore* store_;
  std::vector<RingTable> tables_;
  uint64_t seen_version_ = ~0ull;
  uint64_t cache_hits_ = 0;
  uint64_t refreshes_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CORE_ROUTER_H_
