#include "skute/core/sla.h"

#include "skute/economy/availability.h"

namespace skute {

SlaLevel SlaLevel::ForReplicas(int k, double confidence, double margin) {
  SlaLevel level;
  level.min_availability =
      AvailabilityModel::ThresholdForReplicas(k, confidence, margin);
  level.replicas_hint = k;
  level.name = "replicas-" + std::to_string(k);
  return level;
}

}  // namespace skute
