#ifndef SKUTE_CORE_NET_STATS_H_
#define SKUTE_CORE_NET_STATS_H_

#include <cstdint>

namespace skute {

/// \brief Service-plane accounting: what the wire protocol and the
/// connection acceptor (skute/net) did, counted at the real call sites.
/// Lives in core (like CommStats) so the store can own a per-epoch and a
/// lifetime instance without depending on the net plane; the metrics CSV
/// surfaces the per-epoch one as the net_* columns.
struct NetStats {
  /// Connections the acceptor took in.
  uint64_t conns_accepted = 0;
  /// Connections turned away at the connection budget (shed-on-overload).
  uint64_t conns_shed = 0;
  /// Connections closed (peer hangup, QUIT, drain).
  uint64_t conns_closed = 0;
  /// Connections force-closed by the acceptor's idle deadline (a stalled
  /// client must not pin a slot in the connection budget forever).
  uint64_t conns_timed_out = 0;
  /// Raw socket traffic.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Commands dispatched through the store (GET/PUT/DELETE/STATS/QUIT).
  uint64_t ops = 0;
  /// Subset answered successfully (VALUE/STORED/DELETED/STATS/BYE).
  uint64_t ops_ok = 0;
  /// Subset answered NOT_FOUND (a miss is a served answer, not an error).
  uint64_t ops_not_found = 0;
  /// Subset answered ERROR (store-level failure: saturation, lost
  /// partition, bad ring...).
  uint64_t ops_error = 0;
  /// Frames the parser rejected (malformed verb, torn/oversized frame).
  uint64_t protocol_errors = 0;

  void Clear() { *this = NetStats(); }

  void Accumulate(const NetStats& other) {
    conns_accepted += other.conns_accepted;
    conns_shed += other.conns_shed;
    conns_closed += other.conns_closed;
    conns_timed_out += other.conns_timed_out;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    ops += other.ops;
    ops_ok += other.ops_ok;
    ops_not_found += other.ops_not_found;
    ops_error += other.ops_error;
    protocol_errors += other.protocol_errors;
  }
};

}  // namespace skute

#endif  // SKUTE_CORE_NET_STATS_H_
