#include "skute/core/store.h"

#include <algorithm>

#include "skute/common/hash.h"
#include "skute/economy/availability.h"
#include "skute/io/io_pool.h"
#include "skute/obs/clock.h"

namespace skute {

SkuteStore::SkuteStore(Cluster* cluster, const SkuteOptions& options)
    : cluster_(cluster),
      options_(options),
      vnodes_(options.decision.balance_window),
      policy_(std::make_unique<EconomicPolicy>(options.decision)),
      io_pool_(options.durability.io_threads > 0
                   ? std::make_unique<IoPool>(options.durability.io_threads)
                   : nullptr),
      executor_(cluster, &catalog_, &vnodes_,
                options.track_real_data ? &replica_data_ : nullptr),
      rng_(options.seed),
      pipeline_(options.epoch) {
  // Per-server backend selection reaches the data plane here: a server's
  // ReplicaStore is created with the factory derived from its config.
  replica_data_.set_provider(
      [this](uint32_t id) { return FactoryForServer(id); });
}

// Out-of-line so ~IoPool (and its final drain) instantiates here, where
// the type is complete; replica_data_ is destroyed first (reverse
// declaration order), so no backend outlives the pool.
SkuteStore::~SkuteStore() = default;

BackendFactory SkuteStore::FactoryForServer(ServerId id) const {
  const Server* s = cluster_->server(id);
  BackendFactory factory(s != nullptr ? s->backend() : BackendConfig{});
  if (io_pool_ != nullptr) {
    factory.AttachIoPool(io_pool_.get(),
                         options_.durability.flush_watermark);
  }
  if (fault_state_ != nullptr) {
    factory.EnableChaos(fault_state_, chaos_counters_);
  }
  return factory.ForServer(id);
}

void SkuteStore::SetPlacementPolicy(
    std::unique_ptr<PlacementPolicy> policy) {
  policy_ = std::move(policy);
}

AppId SkuteStore::CreateApplication(std::string name) {
  Application app;
  app.id = static_cast<AppId>(apps_.size());
  app.name = std::move(name);
  apps_.push_back(std::move(app));
  return apps_.back().id;
}

Result<RingId> SkuteStore::AttachRing(AppId app, const SlaLevel& sla,
                                      uint32_t initial_partitions) {
  if (app >= apps_.size()) {
    return Status::NotFound("unknown application");
  }
  const std::vector<ServerId> online = cluster_->OnlineServers();
  if (online.empty()) {
    return Status::Unavailable("no online servers for initial placement");
  }
  SKUTE_ASSIGN_OR_RETURN(RingId ring,
                         catalog_.CreateRing(app, initial_partitions));
  apps_[app].rings.push_back(ring);
  RingInfo info;
  info.app = app;
  info.sla = sla;
  ring_info_.push_back(std::move(info));

  // Startup state: one replica per partition on a random online server.
  VirtualRing* r = catalog_.ring(ring);
  for (const auto& p : r->partitions()) {
    const ServerId target =
        online[static_cast<size_t>(rng_.UniformInt(0, online.size() - 1))];
    const VNodeId vid = catalog_.AllocateVNodeId();
    (void)p->AddReplica(target, vid, epoch_);
    vnodes_.Create(vid, p->id(), ring, target, epoch_);
  }

  policies_.clear();  // force rebuild
  ++placement_version_;
  ring_queries_epoch_.resize(catalog_.ring_count(), 0);
  ring_spend_epoch_.resize(catalog_.ring_count(), 0.0);
  ring_spend_total_.resize(catalog_.ring_count(), 0.0);
  return ring;
}

Status SkuteStore::SetClientMix(RingId ring, ClientMix mix) {
  if (ring >= ring_info_.size()) {
    return Status::NotFound("unknown ring");
  }
  ring_info_[ring].mix = std::move(mix);
  policies_.clear();
  return Status::OK();
}

const Application* SkuteStore::application(AppId id) const {
  if (id >= apps_.size()) return nullptr;
  return &apps_[id];
}

const SlaLevel* SkuteStore::sla_of_ring(RingId ring) const {
  if (ring >= ring_info_.size()) return nullptr;
  return &ring_info_[ring].sla;
}

const ClientMix* SkuteStore::MixOf(RingId ring) const {
  if (ring >= ring_info_.size()) return nullptr;
  const ClientMix& mix = ring_info_[ring].mix;
  return mix.empty() ? nullptr : &mix;
}

const std::vector<RingPolicy>& SkuteStore::policies() {
  if (policies_.size() != catalog_.ring_count()) {
    policies_.clear();
    policies_.reserve(catalog_.ring_count());
    for (RingId r = 0; r < catalog_.ring_count(); ++r) {
      RingPolicy p;
      p.min_availability = ring_info_[r].sla.min_availability;
      p.mix = MixOf(r);
      policies_.push_back(p);
    }
  }
  return policies_;
}

// --- Data plane -------------------------------------------------------------

Status SkuteStore::ReserveOnReplicas(Partition* p, int64_t delta) {
  if (delta == 0) return Status::OK();
  std::vector<Server*> reserved;
  for (const ReplicaInfo& r : p->replicas()) {
    Server* s = cluster_->server(r.server);
    if (s == nullptr || !s->online()) continue;
    if (delta > 0) {
      const Status st = s->ReserveStorage(static_cast<uint64_t>(delta));
      if (!st.ok()) {
        for (Server* undo : reserved) {
          (void)undo->ReleaseStorage(static_cast<uint64_t>(delta));
        }
        return st;
      }
      reserved.push_back(s);
    } else {
      (void)s->ReleaseStorage(static_cast<uint64_t>(-delta));
    }
  }
  return Status::OK();
}

Status SkuteStore::ApplyUpsert(RingId ring, uint64_t key_hash,
                               uint32_t size_bytes, std::string_view key,
                               const std::string* value) {
  Partition* p = catalog_.FindPartition(ring, key_hash);
  if (p == nullptr) return Status::NotFound("unknown ring or empty ring");
  if (p->replica_count() == 0) {
    ++insert_failures_;
    return Status::Unavailable("partition lost (no replicas)");
  }
  // Live replica check: a partition whose every replica is offline cannot
  // accept writes.
  bool any_live = false;
  for (const ReplicaInfo& r : p->replicas()) {
    const Server* s = cluster_->server(r.server);
    if (s != nullptr && s->online()) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    ++insert_failures_;
    return Status::Unavailable("all replicas offline");
  }

  const auto existing = p->FindObject(key_hash);
  const int64_t delta =
      static_cast<int64_t>(size_bytes) -
      (existing.ok() ? static_cast<int64_t>(existing.value()) : 0);
  const Status reserve = ReserveOnReplicas(p, delta);
  if (!reserve.ok()) {
    ++insert_failures_;
    return reserve;
  }
  (void)p->UpsertObject(key_hash, size_bytes);

  const bool materialize = value != nullptr && options_.track_real_data;
  const bool ship_logs = materialize && options_.durability.log_shipping;
  size_t live_replicas = 0;
  size_t copies_written = 0;
  for (const ReplicaInfo& r : p->replicas()) {
    const Server* s = cluster_->server(r.server);
    if (s == nullptr || !s->online()) continue;
    ++live_replicas;
    // Log shipping: only the primary (first live replica) takes the bytes
    // now; secondaries catch up from its log at the epoch's durability
    // point. Otherwise the write fans out to every live replica eagerly.
    if (materialize && (!ship_logs || copies_written == 0)) {
      (void)replica_data_.For(r.server)
          .OpenOrCreate(p->id())
          ->Put(key, *value);
      ++copies_written;
    }
  }
  if (ship_logs && copies_written > 0) dirty_partitions_.insert(p->id());
  // Consistency fan-out: every live replica hears about the write; the
  // bytes travel to every copy written *now* (all of them, or just the
  // primary under log shipping — the deferred sync traffic is accounted
  // by the durability stage when it actually moves).
  comm_epoch_.consistency_msgs += live_replicas;
  comm_epoch_.consistency_bytes +=
      static_cast<uint64_t>(size_bytes) *
      (ship_logs ? copies_written : live_replicas);

  stats_[p->id()].write_bytes += size_bytes;
  MaybeSplit(p);
  return Status::OK();
}

Status SkuteStore::Put(RingId ring, std::string_view key,
                       std::string_view value) {
  const std::string v(value);
  return ApplyUpsert(ring, Hash64(key),
                     static_cast<uint32_t>(key.size() + value.size()), key,
                     &v);
}

Status SkuteStore::PutSynthetic(RingId ring, uint64_t key_hash,
                                uint32_t size_bytes) {
  return ApplyUpsert(ring, key_hash, size_bytes, {}, nullptr);
}

Status SkuteStore::PutSized(RingId ring, std::string_view key,
                            uint32_t value_bytes) {
  // Deterministic filler derived from the key, so repeated runs (and
  // replicas) hold byte-identical values.
  const std::string v(
      value_bytes, static_cast<char>('a' + (Hash64(key) % 26)));
  return ApplyUpsert(ring, Hash64(key),
                     static_cast<uint32_t>(key.size()) + value_bytes, key,
                     &v);
}

Server* SkuteStore::BestLiveReplica(const Partition& p, RingId ring,
                                    VNodeId* vnode_out) {
  // Replica choice: best proximity, then least loaded this epoch.
  const ClientMix* mix = MixOf(ring);
  Server* best = nullptr;
  VNodeId best_vnode = kInvalidVNode;
  double best_score = 0.0;
  for (const ReplicaInfo& r : p.replicas()) {
    Server* s = cluster_->server(r.server);
    if (s == nullptr || !s->online()) continue;
    // Chaos net-partitions zero the proximity term (mix-unreachable);
    // the replica only wins if no reachable one exists.
    const double g =
        s->net_partitioned()
            ? 0.0
            : (mix == nullptr ? 1.0
                              : NormalizedProximity(*mix, s->location()));
    const double load =
        static_cast<double>(s->queries_served_this_epoch() + 1);
    const double score = g / load;
    if (best == nullptr || score > best_score) {
      best = s;
      best_vnode = r.vnode;
      best_score = score;
    }
  }
  *vnode_out = best_vnode;
  return best;
}

Result<std::string> SkuteStore::Get(RingId ring, std::string_view key) {
  const uint64_t h = Hash64(key);
  Partition* p = catalog_.FindPartition(ring, h);
  if (p == nullptr) return Status::NotFound("unknown ring");
  if (!p->FindObject(h).ok()) return Status::NotFound("key not found");

  VNodeId best_vnode = kInvalidVNode;
  Server* best = BestLiveReplica(*p, ring, &best_vnode);
  if (best == nullptr) return Status::Unavailable("all replicas offline");

  VirtualNode* v = vnodes_.Find(best_vnode);
  if (v != nullptr) ++v->queries_routed;
  ++ring_queries_epoch_[ring];
  ++comm_epoch_.query_msgs;
  stats_[p->id()].queries += 1;
  if (best->ServeQueries(1) == 0) {
    return Status::ResourceExhausted("replica server saturated");
  }
  if (v != nullptr) ++v->queries_served;

  if (options_.track_real_data) {
    const ReplicaStore* rs = replica_data_.Find(best->id());
    const StorageBackend* store =
        rs == nullptr ? nullptr : rs->Find(p->id());
    if (store != nullptr) {
      auto value = store->Get(key);
      if (value.ok()) return value;
    }
  }
  return Status::FailedPrecondition(
      "object exists but value is synthetic (size-only)");
}

Result<std::string> SkuteStore::ServeGet(RingId ring,
                                         std::string_view key) {
  const uint64_t h = Hash64(key);
  Partition* p = catalog_.FindPartition(ring, h);
  if (p == nullptr) return Status::NotFound("unknown ring");

  // The routing contract: every live request is requested; it becomes
  // routed (capacity debited) or lost, exactly like a synthetic batch
  // query. This happens before the object lookup — a replica answers a
  // miss with work, so the miss consumes routed capacity too.
  ++last_route_.requested;
  VNodeId best_vnode = kInvalidVNode;
  Server* best = BestLiveReplica(*p, ring, &best_vnode);
  if (best == nullptr) {
    ++last_route_.lost;
    return Status::Unavailable("all replicas offline");
  }
  ++last_route_.routed;

  VirtualNode* v = vnodes_.Find(best_vnode);
  if (v != nullptr) ++v->queries_routed;
  ++ring_queries_epoch_[ring];
  ++comm_epoch_.query_msgs;
  stats_[p->id()].queries += 1;
  if (best->ServeQueries(1) == 0) {
    return Status::ResourceExhausted("replica server saturated");
  }
  if (v != nullptr) ++v->queries_served;

  if (!p->FindObject(h).ok()) return Status::NotFound("key not found");
  if (options_.track_real_data) {
    const ReplicaStore* rs = replica_data_.Find(best->id());
    const StorageBackend* store =
        rs == nullptr ? nullptr : rs->Find(p->id());
    if (store != nullptr) {
      auto value = store->Get(key);
      if (value.ok()) return value;
    }
  }
  return Status::FailedPrecondition(
      "object exists but value is synthetic (size-only)");
}

Status SkuteStore::Delete(RingId ring, std::string_view key) {
  const uint64_t h = Hash64(key);
  Partition* p = catalog_.FindPartition(ring, h);
  if (p == nullptr) return Status::NotFound("unknown ring");
  SKUTE_ASSIGN_OR_RETURN(uint32_t size, p->RemoveObject(h));
  (void)ReserveOnReplicas(p, -static_cast<int64_t>(size));
  if (options_.track_real_data) {
    for (const ReplicaInfo& r : p->replicas()) {
      ReplicaStore* rs = replica_data_.Find(r.server);
      StorageBackend* store = rs == nullptr ? nullptr : rs->Find(p->id());
      if (store != nullptr) (void)store->Delete(key);
    }
  }
  return Status::OK();
}

// --- Splits -------------------------------------------------------------------

void SkuteStore::MaybeSplit(Partition* p) {
  while (p->NeedsSplit(options_.max_partition_bytes)) {
    auto sibling_or = catalog_.SplitPartition(p->id());
    if (!sibling_or.ok()) return;  // range exhausted: give up quietly
    ++placement_version_;
    Partition* sibling = *sibling_or;
    if (options_.track_real_data) SplitRealData(*p, *sibling);
    PlaceSiblingReplicas(p, sibling);
    // Loop: in the pathological case where all bytes fell on one side the
    // parent may still exceed the cap; split again (or stop at min range).
    if (sibling->NeedsSplit(options_.max_partition_bytes)) {
      MaybeSplit(sibling);
    }
  }
}

void SkuteStore::MoveSiblingData(PartitionId sibling, ServerId from,
                                 ServerId to) {
  if (!options_.track_real_data) return;
  ReplicaStore* src = replica_data_.Find(from);
  if (src == nullptr || src->Find(sibling) == nullptr) {
    return;
  }
  // When the target is another parent-replica server it already holds an
  // identical copy from SplitRealData: keep that one, drop the source's.
  if (replica_data_.For(to).Find(sibling) != nullptr) {
    (void)src->Drop(sibling);
    return;
  }
  (void)replica_data_.For(to).MoveFrom(src, sibling);
}

void SkuteStore::PlaceSiblingReplicas(Partition* parent,
                                      Partition* sibling) {
  // A split's upper half is re-placed through Eq. 3 rather than mirrored
  // onto the parent's servers. Mirroring is free but pins a hot
  // partition's whole growing lineage to the same few servers — they hit
  // 100% while the cluster is half empty (insert failures at 57% cluster
  // utilization in the Fig. 5 scenario). Re-placement exports half the
  // bytes per split through the normal admission/bandwidth machinery,
  // which is what makes the paper's "balances the used storage
  // efficiently" claim come out. When no transfer is possible this epoch
  // (budgets, admission), the replica falls back to mirroring in place
  // and later pressure-driven splits retry.
  const uint64_t bytes = sibling->bytes();
  const ClientMix* mix = MixOf(sibling->ring());
  // Snapshot: AddReplica below must not affect the iteration source.
  const std::vector<ReplicaInfo> parent_replicas = parent->replicas();
  for (const ReplicaInfo& parent_rep : parent_replicas) {
    Server* origin = cluster_->server(parent_rep.server);
    ServerId chosen = parent_rep.server;  // fallback: mirror in place
    if (bytes > 0 && origin != nullptr && origin->online() &&
        origin->CanStartReplication()) {
      auto choice = SelectTargetForSet(
          *cluster_, ReplicaServerSet(*sibling), bytes, mix,
          options_.decision.candidate, /*exclude=*/{},
          /*surcharge=*/nullptr, /*tie_break_salt=*/sibling->id());
      if (choice.ok() && choice->server != parent_rep.server) {
        Server* target = cluster_->server(choice->server);
        if (target != nullptr && target->CanStartReplication() &&
            target->ReserveStorage(bytes).ok()) {
          (void)origin->ReleaseStorage(bytes);
          origin->ChargeReplication(bytes);
          target->ChargeReplication(bytes);
          MoveSiblingData(sibling->id(), parent_rep.server,
                          choice->server);
          ++comm_epoch_.transfer_msgs;
          comm_epoch_.transfer_bytes += bytes;
          chosen = choice->server;
        }
      }
    }
    if (sibling->HasReplicaOn(chosen)) {
      // Rare collision, only possible on the mirror fallback: Eq. 3
      // already placed a sibling replica on this very server (it was a
      // transfer target earlier in this loop). Release this copy's bytes
      // — they were reserved under the parent, and the live replica's
      // bytes were reserved separately by the transfer. The KvStore slot
      // now belongs to the live replica, so the data stays. The repair
      // pass restores the replica count next epoch if the SLA needs it.
      if (origin != nullptr && bytes > 0) {
        (void)origin->ReleaseStorage(bytes);
      }
      continue;
    }
    const VNodeId vid = catalog_.AllocateVNodeId();
    (void)sibling->AddReplica(chosen, vid, epoch_);
    vnodes_.Create(vid, sibling->id(), sibling->ring(), chosen, epoch_);
  }
}

void SkuteStore::SplitRealData(const Partition& lower,
                               const Partition& upper) {
  for (const ReplicaInfo& r : lower.replicas()) {
    ReplicaStore* rs = replica_data_.Find(r.server);
    if (rs == nullptr) continue;
    StorageBackend* src = rs->Find(lower.id());
    if (src == nullptr) continue;
    StorageBackend* dst = rs->OpenOrCreate(upper.id());
    // Move every key whose hash now belongs to the upper range.
    std::vector<std::string> moved;
    for (const auto& [key, value] : src->Scan("", src->Count())) {
      if (upper.range().Contains(Hash64(key))) {
        (void)dst->Put(key, value);
        moved.push_back(key);
      }
    }
    for (const std::string& key : moved) (void)src->Delete(key);
  }
}

// --- Query plane -----------------------------------------------------------------

RouteResult SkuteStore::RouteQueryBatch(const QueryBatch& batch) {
  EpochContext ctx = MakeEpochContext(&policies());
  ctx.query_batch = &batch;
  const obs::StopWatch watch;
  pipeline_.Run(EpochPhase::kRoute, ctx);
  ctx.route_result.route_ms = watch.ElapsedMs();
  last_route_.Accumulate(ctx.route_result);
  return ctx.route_result;
}

void SkuteStore::RouteQueriesToPartition(Partition* partition,
                                         uint64_t count) {
  if (partition == nullptr || count == 0) return;
  RouteAccum accum;
  ComputePartitionRoute(cluster_, &vnodes_, *partition, count,
                        MixOf(partition->ring()), &accum);
  ApplyRouteAccum(accum, &stats_, &ring_queries_epoch_, &comm_epoch_,
                  &last_route_);
}

void SkuteStore::RouteQueries(RingId ring, uint64_t key_hash,
                              uint64_t count) {
  RouteQueriesToPartition(catalog_.FindPartition(ring, key_hash), count);
}

// --- Epoch lifecycle -----------------------------------------------------------
//
// All pass logic lives in the EpochPipeline's stages (skute/engine): the
// store only assembles the context over its own members.

EpochContext SkuteStore::MakeEpochContext(
    const std::vector<RingPolicy>* policies) {
  EpochContext ctx;
  ctx.cluster = cluster_;
  ctx.catalog = &catalog_;
  ctx.vnodes = &vnodes_;
  ctx.policy = policy_.get();
  ctx.executor = &executor_;
  ctx.rng = &rng_;
  ctx.decision = &options_.decision;
  ctx.policies = policies;
  ctx.epoch = &epoch_;
  ctx.seed = options_.seed;
  ctx.stats = &stats_;
  ctx.ring_queries_epoch = &ring_queries_epoch_;
  ctx.ring_spend_epoch = &ring_spend_epoch_;
  ctx.ring_spend_total = &ring_spend_total_;
  ctx.comm_epoch = &comm_epoch_;
  ctx.comm_total = &comm_total_;
  ctx.net_epoch = &net_epoch_;
  ctx.net_total = &net_total_;
  ctx.last_stats = &last_stats_;
  ctx.last_route = &last_route_;
  ctx.placement_version = &placement_version_;
  ctx.replica_data = options_.track_real_data ? &replica_data_ : nullptr;
  ctx.io_pool = io_pool_.get();
  ctx.durability = &options_.durability;
  ctx.dirty_partitions = &dirty_partitions_;
  return ctx;
}

void SkuteStore::BeginEpoch() {
  EpochContext ctx = MakeEpochContext(/*policies=*/nullptr);
  pipeline_.Run(EpochPhase::kBegin, ctx);
}

ExecutorStats SkuteStore::EndEpoch() {
  EpochContext ctx = MakeEpochContext(&policies());
  pipeline_.Run(EpochPhase::kEnd, ctx);
  // The service plane's between-epochs serve window: live connections
  // get pumped here, after the epoch's stages but before the caller
  // snapshots metrics — so every served op lands in the epoch whose
  // capacity it debited. A no-op unless a NetService registered itself.
  pipeline_.RunServeWindow();
  return last_stats_;
}

// --- Failures ---------------------------------------------------------------------

void SkuteStore::HandleServerFailure(ServerId id) {
  ++placement_version_;
  for (Partition* p : catalog_.PartitionsWithReplicaOn(id)) {
    const auto replica = p->ReplicaOn(id);
    if (replica.ok()) {
      (void)vnodes_.Remove(replica->vnode);
    }
    (void)p->RemoveReplica(id);
    if (p->replica_count() == 0) ++lost_partitions_;
  }
  replica_data_.Erase(id);
}

// --- Introspection ------------------------------------------------------------------

std::vector<uint32_t> SkuteStore::VNodesPerServer() const {
  std::vector<uint32_t> counts(cluster_->size(), 0);
  catalog_.ForEachPartition([&](const Partition* p) {
    for (const ReplicaInfo& r : p->replicas()) {
      if (r.server < counts.size()) ++counts[r.server];
    }
  });
  return counts;
}

std::vector<std::vector<uint64_t>>
SkuteStore::QueriesServedPerRingPerServer() const {
  std::vector<std::vector<uint64_t>> out(
      catalog_.ring_count(), std::vector<uint64_t>(cluster_->size(), 0));
  catalog_.ForEachPartition([&](const Partition* p) {
    for (const ReplicaInfo& r : p->replicas()) {
      const VirtualNode* v = vnodes_.Find(r.vnode);
      if (v == nullptr || r.server >= cluster_->size()) continue;
      out[p->ring()][r.server] += v->queries_served;
    }
  });
  return out;
}

RingReport SkuteStore::ReportRing(RingId ring) const {
  RingReport report;
  const VirtualRing* r = catalog_.ring(ring);
  if (r == nullptr) return report;
  const double th = ring_info_[ring].sla.min_availability;
  double sum_avail = 0.0;
  bool first = true;
  for (const auto& p : r->partitions()) {
    ++report.partitions;
    report.vnodes += p->replica_count();
    report.logical_bytes += p->bytes();
    report.replicated_bytes += p->bytes() * p->replica_count();
    const double avail = AvailabilityModel::OfPartition(*p, *cluster_);
    sum_avail += avail;
    if (first || avail < report.min_availability) {
      report.min_availability = avail;
      first = false;
    }
    if (avail < th) ++report.below_threshold;
    bool any_live = false;
    for (const ReplicaInfo& rep : p->replicas()) {
      const Server* s = cluster_->server(rep.server);
      if (s != nullptr && s->online()) {
        any_live = true;
        break;
      }
    }
    if (!any_live) ++report.lost;
  }
  if (report.partitions > 0) {
    report.mean_availability =
        sum_avail / static_cast<double>(report.partitions);
  }
  if (ring < ring_queries_epoch_.size()) {
    report.queries_this_epoch = ring_queries_epoch_[ring];
    report.rent_paid_this_epoch = ring_spend_epoch_[ring];
    report.rent_paid_total = ring_spend_total_[ring];
  }
  return report;
}

}  // namespace skute
