#ifndef SKUTE_NET_PROTOCOL_H_
#define SKUTE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "skute/common/result.h"
#include "skute/common/status.h"
#include "skute/ring/partition.h"

namespace skute {
namespace net {

/// \brief The SkuteStore text wire protocol (memcached-flavoured).
///
/// Requests are CRLF-terminated lines; PUT carries a value payload after
/// its command line. All commands name a replica ring by index so a
/// client can exercise differentiated availability classes directly:
///
///   GET <ring> <key>\r\n
///     -> VALUE <key> <nbytes>\r\n<nbytes bytes>\r\nEND\r\n
///     -> NOT_FOUND\r\n
///     -> ERROR <code> <message>\r\n
///   PUT <ring> <key> <nbytes>\r\n<nbytes bytes>\r\n
///     -> STORED\r\n | ERROR <code> <message>\r\n
///   DEL <ring> <key>\r\n
///     -> DELETED\r\n | NOT_FOUND\r\n | ERROR <code> <message>\r\n
///   STATS\r\n
///     -> STAT <name> <value>\r\n ... END\r\n
///   QUIT\r\n
///     -> BYE\r\n (then the server closes the connection)
///
/// The parser below is incremental: feed it whatever the socket
/// delivered — half a line, three pipelined commands, a command line
/// with its payload torn across reads — and pull complete commands out
/// as they become available. Malformed input yields a typed Status and
/// the parser resynchronises at the next CRLF instead of wedging the
/// connection.

/// Command verbs the protocol understands.
enum class Verb : uint8_t {
  kGet,
  kPut,
  kDelete,
  kStats,
  kQuit,
};

/// Short name of a verb, e.g. "GET" (for spans and logs).
std::string_view VerbName(Verb verb);

/// One parsed request frame.
struct Command {
  Verb verb = Verb::kGet;
  RingId ring = 0;
  std::string key;
  std::string value;  ///< PUT payload; empty otherwise.
};

/// \brief Incremental frame parser over a byte stream.
///
/// Owns a reassembly buffer; Append() takes raw socket bytes and Next()
/// yields at most one command per call. Oversized or malformed frames
/// produce an error exactly once and then switch the parser into a
/// discard state that swallows the rest of the bad frame, so one broken
/// client command cannot desynchronise the stream.
class FrameParser {
 public:
  /// Frame-size guards. Oversized input is a protocol error, not an
  /// allocation: the parser discards without buffering past the limit.
  struct Limits {
    size_t max_line_bytes = 1024;
    size_t max_value_bytes = 1 << 20;  ///< 1 MiB PUT payload cap.
  };

  /// What Next() produced.
  enum class Outcome : uint8_t {
    kCommand,   ///< *out holds a complete command.
    kNeedMore,  ///< the buffer holds no complete frame; feed more bytes.
    kError,     ///< *error holds a typed protocol error; stream resynced.
  };

  FrameParser() = default;
  explicit FrameParser(Limits limits) : limits_(limits) {}

  /// Feeds raw bytes from the socket into the reassembly buffer.
  void Append(std::string_view bytes);

  /// Pulls the next complete command out of the buffer. Call in a loop
  /// until it returns kNeedMore; pipelined input yields one command per
  /// call. On kError the offending frame has been consumed (or will be
  /// silently discarded as its remaining bytes arrive) and parsing
  /// continues at the next frame boundary.
  Outcome Next(Command* out, Status* error);

  /// Bytes currently buffered awaiting a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  const Limits& limits() const { return limits_; }

 private:
  enum class State : uint8_t {
    kLine,          ///< scanning for a CRLF-terminated command line
    kValue,         ///< collecting a PUT payload of known size
    kDiscardLine,   ///< oversized line: drop bytes until CRLF
    kDiscardValue,  ///< oversized/with-error payload: drop nbytes + CRLF
  };

  /// Parses one complete command line (no CRLF). Returns the command or
  /// a typed error; a PUT switches state to kValue first.
  Result<Command> ParseLine(std::string_view line);

  void Compact();

  Limits limits_;
  State state_ = State::kLine;
  std::string buffer_;
  size_t consumed_ = 0;       ///< prefix of buffer_ already handed out
  Command pending_;           ///< PUT awaiting its payload
  size_t value_needed_ = 0;   ///< payload bytes still to collect/discard
  bool discard_seen_cr_ = false;
};

/// --- Response encoders (appended to the connection's write buffer) ---

/// "VALUE <key> <n>\r\n<data>\r\nEND\r\n"
void EncodeValue(std::string_view key, std::string_view data,
                 std::string* out);
void EncodeStored(std::string* out);
void EncodeDeleted(std::string* out);
void EncodeNotFound(std::string* out);
void EncodeBye(std::string* out);
/// "STAT <name> <value>\r\n" — finish a STATS reply with EncodeEnd().
void EncodeStatLine(std::string_view name, uint64_t value, std::string* out);
void EncodeEnd(std::string* out);
/// "ERROR <code> <message>\r\n" with a lowercase snake_case code token
/// derived from the Status code (e.g. "resource_exhausted").
void EncodeError(const Status& status, std::string* out);

/// The lowercase token EncodeError writes for a given code.
std::string_view StatusCodeToken(Status::Code code);

}  // namespace net
}  // namespace skute

#endif  // SKUTE_NET_PROTOCOL_H_
