#ifndef SKUTE_NET_LOADGEN_H_
#define SKUTE_NET_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "skute/common/histogram.h"
#include "skute/common/status.h"
#include "skute/ring/partition.h"

namespace skute {
namespace net {

/// \brief Aggregate outcome of one load-generator run.
struct LoadGenReport {
  uint64_t ops = 0;
  uint64_t ok = 0;          ///< VALUE/STORED/DELETED replies
  uint64_t not_found = 0;   ///< NOT_FOUND replies (expected misses)
  uint64_t errors = 0;      ///< ERROR replies (server-side refusals)
  uint64_t transport_errors = 0;  ///< connect/send/recv failures
  /// Successful reconnects after a transport error or injected reset —
  /// a client thread survives connection loss instead of dying with it.
  uint64_t reconnects = 0;
  /// Connections this client deliberately cut (chaos_reset_per_mille).
  uint64_t chaos_resets = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  double seconds = 0.0;     ///< wall time from first to last op
  Histogram latency_ms;     ///< per-op round-trip latency

  double OpsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

/// \brief Closed-loop load generator against a live NetService.
///
/// N client threads each open one blocking connection and issue a
/// GET/PUT mix over a zipfian-sampled keyspace, one op in flight per
/// client (closed loop: the server's between-epochs serve cadence sets
/// the pace). Threads share nothing but the stop flag and a finished
/// counter; per-thread reports merge after Join, so the loadgen is
/// TSan-clean by construction.
class LoadGen {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    int clients = 4;
    uint64_t seed = 42;
    /// Operation mix: fraction of PUTs (the rest are GETs).
    double put_fraction = 0.2;
    /// Keys are "lg:<i>" for i in [0, keyspace), zipf-sampled.
    uint64_t keyspace = 1000;
    /// Zipf skew; 0 = uniform.
    double zipf_s = 0.99;
    uint32_t value_bytes = 64;
    /// Ring indices to spread ops across (round-robin per op).
    std::vector<RingId> rings = {0};
    /// Per-client op budget; 0 = run until RequestStop().
    uint64_t max_ops_per_client = 0;
    /// Blocking-socket receive timeout (a wedged server fails the
    /// client op instead of hanging the thread).
    int recv_timeout_ms = 5000;

    // --- chaos knobs (all off by default) ------------------------------
    /// Per-op probability (per mille) that the client cuts its own
    /// connection mid-stream — the connection-reset fault. The client
    /// then exercises the reconnect-with-backoff path.
    uint32_t chaos_reset_per_mille = 0;
    /// Injected client stall: with probability chaos_stall_per_mille
    /// per op, sleep chaos_stall_ms before sending (stalled-client
    /// fault; pairs with the acceptor's idle timeout).
    uint32_t chaos_stall_ms = 0;
    uint32_t chaos_stall_per_mille = 100;
  };

  explicit LoadGen(Options options);
  ~LoadGen();

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  /// Spawns the client threads. Call once.
  Status Start();

  /// Asks every client to finish its in-flight op and disconnect.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// True once every client thread has run to completion. The server
  /// loop polls this while pumping serve windows, because a closed-loop
  /// client can only finish if the server keeps answering.
  bool Finished() const {
    return finished_.load(std::memory_order_acquire) ==
           static_cast<int>(threads_.size());
  }

  /// Joins all threads and merges the per-client reports.
  LoadGenReport Join();

 private:
  struct ClientState;
  void RunClient(ClientState* state);

  Options options_;
  std::atomic<bool> stop_{false};
  std::atomic<int> finished_{0};
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<ClientState>> states_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace net
}  // namespace skute

#endif  // SKUTE_NET_LOADGEN_H_
