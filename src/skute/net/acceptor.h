#ifndef SKUTE_NET_ACCEPTOR_H_
#define SKUTE_NET_ACCEPTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "skute/common/status.h"
#include "skute/core/net_stats.h"
#include "skute/net/connection.h"

namespace skute {
namespace net {

/// \brief Non-blocking connection acceptor over a listen socket.
///
/// Single-threaded by design: the owner pumps it from the serve window
/// between epochs (or from a test loop). One Pump() round polls the
/// listen socket plus every live connection once, accepts within the
/// connection budget — turning excess clients away loudly rather than
/// queueing them — and drives each ready connection's
/// read→parse→dispatch→write machine.
class Acceptor {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;  ///< 0 picks an ephemeral port; see port() after Listen
    int backlog = 64;
    /// Live-connection budget. Connections beyond it are shed with an
    /// ERROR line and an immediate close (counted in NetStats).
    size_t max_connections = 64;
    /// Idle-connection deadline: a connection that moved no bytes in
    /// either direction for this long is force-closed at the next Pump
    /// and counted in NetStats.conns_timed_out. 0 disables the reaper.
    int idle_timeout_ms = 0;
    FrameParser::Limits limits;
  };

  Acceptor(Options options, Dispatcher* dispatcher, NetStats* stats);
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Opens, binds, and listens. On success port() is the bound port.
  Status Listen();

  /// One poll round: accept new clients, service ready connections,
  /// reap finished ones. Returns the number of fds that had activity
  /// (0 means an idle round). `timeout_ms` 0 makes the round
  /// non-blocking; > 0 sleeps in poll(2) awaiting activity.
  int Pump(int timeout_ms);

  /// Graceful shutdown: stop accepting, let every connection flush its
  /// output, then close. Gives up (and hard-closes) after
  /// `deadline_ms` of pumping.
  void Drain(int deadline_ms);

  int port() const { return port_; }
  size_t live_connections() const { return conns_.size(); }
  bool listening() const { return listen_fd_ >= 0; }

 private:
  void AcceptReady();
  void Shed(int fd);

  Options options_;
  Dispatcher* dispatcher_;
  NetStats* stats_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace skute

#endif  // SKUTE_NET_ACCEPTOR_H_
