#include "skute/net/protocol.h"

#include <algorithm>
#include <cstdio>

namespace skute {
namespace net {

namespace {

/// Splits `line` on single spaces into at most `max_tokens` pieces.
/// Returns the token count, or 0 if the line is empty or has leading,
/// trailing, or doubled spaces (the grammar is exactly one space
/// between tokens — anything else is malformed).
int Tokenize(std::string_view line, std::string_view* tokens,
             int max_tokens) {
  if (line.empty()) return 0;
  int count = 0;
  size_t start = 0;
  while (count < max_tokens) {
    size_t space = line.find(' ', start);
    std::string_view token = (space == std::string_view::npos)
                                 ? line.substr(start)
                                 : line.substr(start, space - start);
    if (token.empty()) return 0;  // leading/doubled/trailing space
    tokens[count++] = token;
    if (space == std::string_view::npos) return count;
    start = space + 1;
  }
  return 0;  // more tokens than any command takes
}

/// Strict decimal parse: digits only, bounded, no sign.
bool ParseU64(std::string_view token, uint64_t max, uint64_t* out) {
  if (token.empty() || token.size() > 19) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  if (v > max) return false;
  *out = v;
  return true;
}

}  // namespace

std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kGet:
      return "GET";
    case Verb::kPut:
      return "PUT";
    case Verb::kDelete:
      return "DEL";
    case Verb::kStats:
      return "STATS";
    case Verb::kQuit:
      return "QUIT";
  }
  return "?";
}

void FrameParser::Append(std::string_view bytes) {
  Compact();
  buffer_.append(bytes.data(), bytes.size());
}

void FrameParser::Compact() {
  // Drop the already-consumed prefix once it dominates the buffer, so a
  // long-lived pipelining connection doesn't grow the buffer unboundedly.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameParser::Outcome FrameParser::Next(Command* out, Status* error) {
  while (true) {
    const size_t available = buffer_.size() - consumed_;
    switch (state_) {
      case State::kLine: {
        size_t crlf = buffer_.find("\r\n", consumed_);
        if (crlf == std::string::npos) {
          if (available > limits_.max_line_bytes) {
            // No terminator within the budget: reject the frame and
            // swallow the rest of the line as it arrives.
            state_ = State::kDiscardLine;
            discard_seen_cr_ = !buffer_.empty() && buffer_.back() == '\r';
            consumed_ = buffer_.size();
            *error = Status::ResourceExhausted(
                "command line exceeds max_line_bytes");
            return Outcome::kError;
          }
          return Outcome::kNeedMore;
        }
        std::string_view line(buffer_.data() + consumed_, crlf - consumed_);
        consumed_ = crlf + 2;  // past the CRLF: resynced whatever happens
        if (line.size() > limits_.max_line_bytes) {
          *error = Status::ResourceExhausted(
              "command line exceeds max_line_bytes");
          return Outcome::kError;
        }
        Result<Command> parsed = ParseLine(line);
        if (!parsed.ok()) {
          *error = parsed.status();
          return Outcome::kError;
        }
        if (state_ == State::kValue) continue;  // PUT: payload next
        *out = std::move(parsed).value();
        return Outcome::kCommand;
      }

      case State::kValue: {
        if (available < value_needed_ + 2) return Outcome::kNeedMore;
        std::string_view payload(buffer_.data() + consumed_, value_needed_);
        std::string_view tail(buffer_.data() + consumed_ + value_needed_, 2);
        consumed_ += value_needed_ + 2;
        state_ = State::kLine;
        if (tail != "\r\n") {
          *error = Status::InvalidArgument(
              "PUT payload not CRLF-terminated");
          return Outcome::kError;
        }
        pending_.value.assign(payload.data(), payload.size());
        *out = std::move(pending_);
        pending_ = Command();
        return Outcome::kCommand;
      }

      case State::kDiscardLine: {
        // Swallow bytes until the CRLF that ends the oversized line,
        // tracking a CR torn across reads.
        for (size_t i = consumed_; i < buffer_.size(); ++i) {
          if (discard_seen_cr_ && buffer_[i] == '\n') {
            consumed_ = i + 1;
            discard_seen_cr_ = false;
            state_ = State::kLine;
            break;
          }
          discard_seen_cr_ = (buffer_[i] == '\r');
        }
        if (state_ == State::kDiscardLine) {
          consumed_ = buffer_.size();
          return Outcome::kNeedMore;
        }
        continue;
      }

      case State::kDiscardValue: {
        size_t drop = std::min(available, value_needed_);
        consumed_ += drop;
        value_needed_ -= drop;
        if (value_needed_ > 0) return Outcome::kNeedMore;
        state_ = State::kLine;
        continue;
      }
    }
  }
}

Result<Command> FrameParser::ParseLine(std::string_view line) {
  std::string_view tokens[4];
  int n = Tokenize(line, tokens, 4);
  if (n == 0) return Status::InvalidArgument("malformed command line");

  Command cmd;
  if (tokens[0] == "GET" || tokens[0] == "DEL") {
    cmd.verb = tokens[0] == "GET" ? Verb::kGet : Verb::kDelete;
    if (n != 3) {
      return Status::InvalidArgument("usage: GET|DEL <ring> <key>");
    }
    uint64_t ring = 0;
    if (!ParseU64(tokens[1], 0xFFFFFFFFu, &ring)) {
      return Status::InvalidArgument("bad ring index");
    }
    cmd.ring = static_cast<RingId>(ring);
    cmd.key.assign(tokens[2].data(), tokens[2].size());
    return cmd;
  }
  if (tokens[0] == "PUT") {
    if (n != 4) {
      return Status::InvalidArgument("usage: PUT <ring> <key> <nbytes>");
    }
    uint64_t ring = 0;
    if (!ParseU64(tokens[1], 0xFFFFFFFFu, &ring)) {
      return Status::InvalidArgument("bad ring index");
    }
    uint64_t nbytes = 0;
    if (!ParseU64(tokens[3], UINT64_MAX, &nbytes)) {
      return Status::InvalidArgument("bad payload size");
    }
    if (nbytes > limits_.max_value_bytes) {
      // The size token itself parsed, so the payload length is known:
      // reject now and silently swallow payload + CRLF as it arrives.
      state_ = State::kDiscardValue;
      value_needed_ = static_cast<size_t>(nbytes) + 2;
      return Status::ResourceExhausted(
          "PUT payload exceeds max_value_bytes");
    }
    cmd.verb = Verb::kPut;
    cmd.ring = static_cast<RingId>(ring);
    cmd.key.assign(tokens[2].data(), tokens[2].size());
    pending_ = std::move(cmd);
    state_ = State::kValue;
    value_needed_ = static_cast<size_t>(nbytes);
    return pending_;  // placeholder; Next() emits after the payload
  }
  if (tokens[0] == "STATS" || tokens[0] == "QUIT") {
    if (n != 1) {
      return Status::InvalidArgument("trailing arguments");
    }
    cmd.verb = tokens[0] == "STATS" ? Verb::kStats : Verb::kQuit;
    return cmd;
  }
  return Status::InvalidArgument("unknown verb");
}

void EncodeValue(std::string_view key, std::string_view data,
                 std::string* out) {
  out->append("VALUE ");
  out->append(key.data(), key.size());
  char size_buf[32];
  int len = std::snprintf(size_buf, sizeof(size_buf), " %zu\r\n",
                          data.size());
  out->append(size_buf, static_cast<size_t>(len));
  out->append(data.data(), data.size());
  out->append("\r\nEND\r\n");
}

void EncodeStored(std::string* out) { out->append("STORED\r\n"); }
void EncodeDeleted(std::string* out) { out->append("DELETED\r\n"); }
void EncodeNotFound(std::string* out) { out->append("NOT_FOUND\r\n"); }
void EncodeBye(std::string* out) { out->append("BYE\r\n"); }

void EncodeStatLine(std::string_view name, uint64_t value,
                    std::string* out) {
  out->append("STAT ");
  out->append(name.data(), name.size());
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), " %llu\r\n",
                          static_cast<unsigned long long>(value));
  out->append(buf, static_cast<size_t>(len));
}

void EncodeEnd(std::string* out) { out->append("END\r\n"); }

void EncodeError(const Status& status, std::string* out) {
  out->append("ERROR ");
  std::string_view token = StatusCodeToken(status.code());
  out->append(token.data(), token.size());
  if (!status.message().empty()) {
    out->push_back(' ');
    // Responses are line-framed: squash any CR/LF in the message.
    for (char c : status.message()) {
      out->push_back((c == '\r' || c == '\n') ? ' ' : c);
    }
  }
  out->append("\r\n");
}

std::string_view StatusCodeToken(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kNotFound:
      return "not_found";
    case Status::Code::kAlreadyExists:
      return "already_exists";
    case Status::Code::kInvalidArgument:
      return "invalid_argument";
    case Status::Code::kResourceExhausted:
      return "resource_exhausted";
    case Status::Code::kUnavailable:
      return "unavailable";
    case Status::Code::kFailedPrecondition:
      return "failed_precondition";
    case Status::Code::kOutOfRange:
      return "out_of_range";
    case Status::Code::kAborted:
      return "aborted";
    case Status::Code::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace net
}  // namespace skute
