#ifndef SKUTE_NET_CONNECTION_H_
#define SKUTE_NET_CONNECTION_H_

#include <chrono>
#include <string>

#include "skute/core/net_stats.h"
#include "skute/net/protocol.h"

namespace skute {
namespace net {

/// \brief Where a connection's parsed commands go. The acceptor is
/// transport only; the store-facing dispatcher (see service.h) maps
/// commands onto the query plane and encodes the reply.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Handles one command, appending the wire reply to *out. Returns
  /// false when the connection should close once the reply is flushed
  /// (QUIT). Accounting for the op goes into *stats.
  virtual bool Dispatch(const Command& cmd, std::string* out,
                        NetStats* stats) = 0;
};

/// \brief One accepted client socket: read → parse → dispatch → write.
///
/// The socket is non-blocking; OnReadable/OnWritable are driven by the
/// acceptor's poll loop and never block. Replies queue in an output
/// buffer so pipelined commands and short writes both work. The
/// connection owns its fd and closes it on destruction.
class Connection {
 public:
  Connection(int fd, FrameParser::Limits limits);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Drains the socket's receive buffer through the parser, dispatching
  /// every complete command. Protocol errors are answered with an ERROR
  /// line (and counted) without closing the stream.
  void OnReadable(Dispatcher* dispatcher, NetStats* stats);

  /// Flushes as much of the output buffer as the socket will take.
  void OnWritable(NetStats* stats);

  /// Stops reading; the connection finishes once the output buffer is
  /// flushed (graceful drain).
  void StartDrain() { draining_ = true; }

  using Clock = std::chrono::steady_clock;

  /// Milliseconds since the last byte moved in either direction.
  int64_t IdleMs(Clock::time_point now) const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now - last_activity_)
        .count();
  }

  /// Marks the connection finished regardless of buffered output — the
  /// acceptor's idle reaper (a stalled peer forfeits its pending reply).
  void ForceClose() { error_ = true; }

  int fd() const { return fd_; }
  bool wants_write() const { return !out_.empty(); }
  /// True once the connection should be destroyed: peer closed, fatal
  /// socket error, or drain/QUIT with the output flushed.
  bool finished() const;

 private:
  int fd_;
  FrameParser parser_;
  std::string out_;
  bool draining_ = false;   ///< stop reading; close after flush
  bool peer_closed_ = false;
  bool error_ = false;
  Clock::time_point last_activity_ = Clock::now();
};

}  // namespace net
}  // namespace skute

#endif  // SKUTE_NET_CONNECTION_H_
