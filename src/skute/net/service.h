#ifndef SKUTE_NET_SERVICE_H_
#define SKUTE_NET_SERVICE_H_

#include <memory>
#include <string>

#include "skute/common/status.h"
#include "skute/core/store.h"
#include "skute/net/acceptor.h"

namespace skute {
namespace net {

/// \brief Maps wire commands onto SkuteStore's query plane and encodes
/// the reply. GET goes through ServeGet (debiting the same ServeQueries
/// capacity and routing counters the synthetic path uses), PUT/DEL
/// through Put/Delete, STATS renders a counter snapshot.
class StoreDispatcher : public Dispatcher {
 public:
  explicit StoreDispatcher(SkuteStore* store) : store_(store) {}

  bool Dispatch(const Command& cmd, std::string* out,
                NetStats* stats) override;

 private:
  SkuteStore* store_;
};

/// \brief The service plane over one SkuteStore: listen socket, wire
/// protocol, and the between-epochs serve window.
///
/// Start() binds the acceptor and registers the window on the store's
/// EpochPipeline; from then on every SkuteStore::EndEpoch pumps live
/// connections after the epoch's stages run — the epoch engine is the
/// control plane, this is the data plane in the gaps. Everything is
/// single-threaded inside the epoch loop's thread, so serving adds no
/// synchronization to the engine and the threads=1 ≡ threads=N
/// determinism contract is untouched.
class NetService {
 public:
  struct Options {
    Acceptor::Options acceptor;
    /// Serve-window bound: the window pumps until an idle poll round or
    /// this many rounds, whichever first, so a chatty client cannot
    /// stall the epoch loop indefinitely.
    int max_pump_rounds = 64;
  };

  NetService(SkuteStore* store, Options options);
  ~NetService();

  NetService(const NetService&) = delete;
  NetService& operator=(const NetService&) = delete;

  /// Binds the listen socket and registers the serve window with the
  /// store's epoch pipeline. After this, port() is live.
  Status Start();

  /// One serve window: pump the acceptor until an idle round (bounded).
  /// Called from the pipeline after each EndEpoch; also callable
  /// directly (tests, post-run drain of in-flight client traffic).
  void ServeWindow();

  /// Graceful shutdown: deregister the serve window, stop accepting,
  /// flush every connection's pending output, close.
  void Shutdown(int drain_deadline_ms = 1000);

  int port() const { return acceptor_.port(); }
  size_t live_connections() const { return acceptor_.live_connections(); }

 private:
  SkuteStore* store_;
  Options options_;
  StoreDispatcher dispatcher_;
  Acceptor acceptor_;
  bool started_ = false;
};

}  // namespace net
}  // namespace skute

#endif  // SKUTE_NET_SERVICE_H_
