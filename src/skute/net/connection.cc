#include "skute/net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace skute {
namespace net {

Connection::Connection(int fd, FrameParser::Limits limits)
    : fd_(fd), parser_(limits) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::finished() const {
  if (error_) return true;
  if (peer_closed_ && out_.empty()) return true;
  return draining_ && out_.empty();
}

void Connection::OnReadable(Dispatcher* dispatcher, NetStats* stats) {
  if (draining_ || error_) return;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      last_activity_ = Clock::now();
      stats->bytes_in += static_cast<uint64_t>(n);
      parser_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      peer_closed_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    error_ = true;
    return;
  }

  Command cmd;
  Status status;
  while (true) {
    FrameParser::Outcome outcome = parser_.Next(&cmd, &status);
    if (outcome == FrameParser::Outcome::kNeedMore) break;
    if (outcome == FrameParser::Outcome::kError) {
      // A malformed frame gets a typed ERROR reply; the parser has
      // already resynchronised, so the stream keeps flowing.
      stats->protocol_errors++;
      EncodeError(status, &out_);
      continue;
    }
    if (!dispatcher->Dispatch(cmd, &out_, stats)) {
      draining_ = true;  // QUIT: close once the BYE is flushed
      break;
    }
  }

  OnWritable(stats);
}

void Connection::OnWritable(NetStats* stats) {
  while (!out_.empty()) {
    ssize_t n = ::send(fd_, out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      last_activity_ = Clock::now();
      stats->bytes_out += static_cast<uint64_t>(n);
      out_.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    error_ = true;
    return;
  }
}

}  // namespace net
}  // namespace skute
