#include "skute/net/acceptor.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "skute/common/logging.h"

namespace skute {
namespace net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Acceptor::Acceptor(Options options, Dispatcher* dispatcher, NetStats* stats)
    : options_(std::move(options)), dispatcher_(dispatcher), stats_(stats) {}

Acceptor::~Acceptor() {
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Acceptor::Listen() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("acceptor already listening");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("bind: ") + strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st =
        Status::Unavailable(std::string("listen: ") + strerror(errno));
    ::close(fd);
    return st;
  }
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return Status::Unavailable("fcntl(O_NONBLOCK) failed");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Unavailable("getsockname failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void Acceptor::Shed(int fd) {
  // Over budget: answer loudly, close immediately, count it. A silent
  // queue would hide the overload from both the client and the metrics.
  std::string reply;
  EncodeError(Status::ResourceExhausted("connection budget exhausted"),
              &reply);
  ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);  // best effort
  ::close(fd);
  stats_->conns_shed++;
  SKUTE_LOG(kWarning) << "net: shed connection (budget "
                      << options_.max_connections << " live "
                      << conns_.size() << ")";
}

void Acceptor::AcceptReady() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK or transient accept error: done
    }
    if (conns_.size() >= options_.max_connections) {
      Shed(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_->conns_accepted++;
    conns_.push_back(std::make_unique<Connection>(fd, options_.limits));
  }
}

int Acceptor::Pump(int timeout_ms) {
  // Idle reaper first, so a timed-out connection leaves in this same
  // round — poll alone would never wake for a silent peer.
  if (options_.idle_timeout_ms > 0 && !conns_.empty()) {
    const auto now = Connection::Clock::now();
    for (auto& conn : conns_) {
      if (conn->finished()) continue;
      const int64_t idle = conn->IdleMs(now);
      if (idle >= options_.idle_timeout_ms) {
        stats_->conns_timed_out++;
        SKUTE_LOG(kWarning) << "net: closing idle connection (idle " << idle
                            << " ms, deadline " << options_.idle_timeout_ms
                            << " ms)";
        conn->ForceClose();
      }
    }
  }

  // Reap up front: a drained connection whose output was already empty
  // raises no poll event, so the post-poll sweep alone would miss it.
  auto finished = [](const std::unique_ptr<Connection>& c) {
    return c->finished();
  };
  size_t before = conns_.size();
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(), finished),
               conns_.end());
  stats_->conns_closed += before - conns_.size();

  if (listen_fd_ < 0 && conns_.empty()) return 0;

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  size_t listen_slot = SIZE_MAX;
  if (listen_fd_ >= 0) {
    listen_slot = fds.size();
    fds.push_back({listen_fd_, POLLIN, 0});
  }
  size_t conn_base = fds.size();
  for (const auto& conn : conns_) {
    short events = POLLIN;
    if (conn->wants_write()) events |= POLLOUT;
    fds.push_back({conn->fd(), events, 0});
  }

  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  if (listen_slot != SIZE_MAX && (fds[listen_slot].revents & POLLIN)) {
    AcceptReady();
  }
  // conns_ may have grown during accept; only the polled prefix has
  // revents to act on.
  size_t polled = fds.size() - conn_base;
  for (size_t i = 0; i < polled; ++i) {
    short revents = fds[conn_base + i].revents;
    if (revents == 0) continue;
    Connection* conn = conns_[i].get();
    if (revents & (POLLIN | POLLHUP | POLLERR)) {
      conn->OnReadable(dispatcher_, stats_);
    } else if (revents & POLLOUT) {
      conn->OnWritable(stats_);
    }
  }

  before = conns_.size();
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(), finished),
               conns_.end());
  stats_->conns_closed += before - conns_.size();
  return ready;
}

void Acceptor::Drain(int deadline_ms) {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& conn : conns_) conn->StartDrain();
  // Pump until every output buffer is flushed or the deadline passes.
  // Rounds poll with a short timeout, so the deadline is approximate.
  int spent_ms = 0;
  const int round_ms = 10;
  while (!conns_.empty() && spent_ms < deadline_ms) {
    Pump(round_ms);
    spent_ms += round_ms;
  }
  if (!conns_.empty()) {
    SKUTE_LOG(kWarning) << "net: drain deadline hit with " << conns_.size()
                        << " connections still open";
    stats_->conns_closed += conns_.size();
    conns_.clear();
  }
}

}  // namespace net
}  // namespace skute
