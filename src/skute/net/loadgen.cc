#include "skute/net/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>

#include "skute/common/random.h"

namespace skute {
namespace net {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal buffered reader over a blocking socket: CRLF lines and
/// fixed-size payloads. Returns false on EOF, timeout, or error.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    while (true) {
      size_t crlf = buf_.find("\r\n");
      if (crlf != std::string::npos) {
        line->assign(buf_, 0, crlf);
        buf_.erase(0, crlf + 2);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadBytes(size_t n, std::string* out) {
    while (buf_.size() < n) {
      if (!Fill()) return false;
    }
    out->assign(buf_, 0, n);
    buf_.erase(0, n);
    return true;
  }

  uint64_t bytes_received() const { return bytes_received_; }

 private:
  bool Fill() {
    char chunk[4096];
    while (true) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        bytes_received_ += static_cast<uint64_t>(n);
        buf_.append(chunk, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout, or error
    }
  }

  int fd_;
  std::string buf_;
  uint64_t bytes_received_ = 0;
};

bool SendAll(int fd, const std::string& data, uint64_t* bytes_sent) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  *bytes_sent += data.size();
  return true;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// One connect attempt; returns a configured socket fd, or -1.
int ConnectOnce(const std::string& host, int port, int recv_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  timeval tv;
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Reconnect policy: a client survives this many consecutive failed
/// attempts (each with capped exponential backoff) before its thread
/// gives up for good.
constexpr int kMaxReconnectAttempts = 8;
constexpr uint64_t kBackoffBaseUs = 2000;    // first retry delay ceiling
constexpr uint64_t kBackoffCapUs = 100000;   // per-attempt delay ceiling

}  // namespace

struct LoadGen::ClientState {
  int index = 0;
  uint64_t seed = 0;
  LoadGenReport report;
};

LoadGen::LoadGen(Options options) : options_(std::move(options)) {
  if (options_.clients < 1) options_.clients = 1;
  if (options_.keyspace == 0) options_.keyspace = 1;
  if (options_.rings.empty()) options_.rings = {0};
}

LoadGen::~LoadGen() {
  if (started_ && !joined_) {
    RequestStop();
    (void)Join();
  }
}

Status LoadGen::Start() {
  if (started_) return Status::FailedPrecondition("loadgen already started");
  started_ = true;
  states_.reserve(static_cast<size_t>(options_.clients));
  threads_.reserve(static_cast<size_t>(options_.clients));
  for (int i = 0; i < options_.clients; ++i) {
    auto state = std::make_unique<ClientState>();
    state->index = i;
    state->seed = options_.seed + static_cast<uint64_t>(i) * 0x9e3779b9ull;
    states_.push_back(std::move(state));
  }
  for (auto& state : states_) {
    threads_.emplace_back([this, s = state.get()] { RunClient(s); });
  }
  return Status::OK();
}

LoadGenReport LoadGen::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  LoadGenReport merged;
  for (const auto& state : states_) {
    const LoadGenReport& r = state->report;
    merged.ops += r.ops;
    merged.ok += r.ok;
    merged.not_found += r.not_found;
    merged.errors += r.errors;
    merged.transport_errors += r.transport_errors;
    merged.reconnects += r.reconnects;
    merged.chaos_resets += r.chaos_resets;
    merged.bytes_sent += r.bytes_sent;
    merged.bytes_received += r.bytes_received;
    merged.seconds = std::max(merged.seconds, r.seconds);
    merged.latency_ms.Merge(r.latency_ms);
  }
  return merged;
}

void LoadGen::RunClient(ClientState* state) {
  LoadGenReport& report = state->report;
  Rng rng(state->seed);

  int fd = -1;
  // The server may still be binding when clients spin up: retry briefly.
  for (int attempt = 0; attempt < 50 && fd < 0; ++attempt) {
    fd = ConnectOnce(options_.host, options_.port, options_.recv_timeout_ms);
    if (fd < 0) ::usleep(20 * 1000);
  }
  if (fd < 0) {
    report.transport_errors++;
    finished_.fetch_add(1, std::memory_order_release);
    return;
  }

  auto reader = std::make_unique<LineReader>(fd);
  const double start = NowSeconds();
  uint64_t ops_done = 0;
  std::string request;
  std::string line;
  std::string payload;

  // Tears down the current connection, banking its receive counter.
  const auto drop_connection = [&] {
    report.bytes_received += reader->bytes_received();
    reader.reset();
    ::close(fd);
    fd = -1;
  };
  // Capped exponential backoff with seeded jitter; false only when the
  // attempt cap is exhausted (or stop was requested) — a transport error
  // costs the client a pause, not its thread.
  const auto reconnect = [&]() -> bool {
    for (int attempt = 0; attempt < kMaxReconnectAttempts; ++attempt) {
      const uint64_t ceil_us = std::min(
          kBackoffBaseUs << std::min(attempt, 8), kBackoffCapUs);
      // Uniform in [ceil/2, ceil] so synchronized clients fan back out.
      const uint64_t sleep_us = ceil_us / 2 + rng.UniformInt(0, ceil_us / 2);
      ::usleep(static_cast<useconds_t>(sleep_us));
      if (stop_.load(std::memory_order_relaxed)) return false;
      fd = ConnectOnce(options_.host, options_.port,
                       options_.recv_timeout_ms);
      if (fd >= 0) {
        reader = std::make_unique<LineReader>(fd);
        report.reconnects++;
        return true;
      }
    }
    return false;
  };

  while (!stop_.load(std::memory_order_relaxed) &&
         (options_.max_ops_per_client == 0 ||
          ops_done < options_.max_ops_per_client)) {
    if (fd < 0 && !reconnect()) break;

    // Injected connection reset: cut our own socket mid-stream and take
    // the reconnect path — the chaos client is its own adversary.
    if (options_.chaos_reset_per_mille > 0 &&
        rng.UniformInt(0, 999) < options_.chaos_reset_per_mille) {
      report.chaos_resets++;
      drop_connection();
      continue;
    }
    // Injected stall: an unresponsive client the acceptor may reap.
    if (options_.chaos_stall_ms > 0 &&
        rng.UniformInt(0, 999) < options_.chaos_stall_per_mille) {
      ::usleep(static_cast<useconds_t>(options_.chaos_stall_ms) * 1000);
    }

    const uint64_t key_idx = rng.Zipf(options_.keyspace, options_.zipf_s);
    const RingId ring =
        options_.rings[static_cast<size_t>(ops_done) %
                       options_.rings.size()];
    const std::string key = "lg:" + std::to_string(key_idx);
    const bool is_put = rng.Bernoulli(options_.put_fraction);

    request.clear();
    if (is_put) {
      const std::string value(
          options_.value_bytes,
          static_cast<char>('a' + static_cast<char>(key_idx % 26)));
      request += "PUT " + std::to_string(ring) + " " + key + " " +
                 std::to_string(value.size()) + "\r\n";
      request += value;
      request += "\r\n";
    } else {
      request += "GET " + std::to_string(ring) + " " + key + "\r\n";
    }

    const double op_start = NowSeconds();
    if (!SendAll(fd, request, &report.bytes_sent)) {
      report.transport_errors++;
      drop_connection();
      continue;
    }
    if (!reader->ReadLine(&line)) {
      report.transport_errors++;
      drop_connection();
      continue;
    }
    bool transport_ok = true;
    if (StartsWith(line, "VALUE ")) {
      // "VALUE <key> <n>" — consume the payload and the END line.
      size_t space = line.rfind(' ');
      size_t nbytes =
          space == std::string::npos
              ? 0
              : static_cast<size_t>(strtoull(line.c_str() + space + 1,
                                             nullptr, 10));
      transport_ok = reader->ReadBytes(nbytes + 2, &payload) &&
                     reader->ReadLine(&line);
      if (transport_ok) report.ok++;
    } else if (StartsWith(line, "STORED") || StartsWith(line, "DELETED")) {
      report.ok++;
    } else if (StartsWith(line, "NOT_FOUND")) {
      report.not_found++;
    } else {
      report.errors++;  // ERROR ... (or anything unexpected)
    }
    if (!transport_ok) {
      report.transport_errors++;
      drop_connection();
      continue;
    }
    report.ops++;
    ops_done++;
    report.latency_ms.Add((NowSeconds() - op_start) * 1000.0);
  }

  if (fd >= 0) {
    // Polite goodbye; best effort (the server may already be draining).
    (void)SendAll(fd, "QUIT\r\n", &report.bytes_sent);
    (void)reader->ReadLine(&line);
    report.bytes_received += reader->bytes_received();
    ::close(fd);
  }
  report.seconds = NowSeconds() - start;
  finished_.fetch_add(1, std::memory_order_release);
}

}  // namespace net
}  // namespace skute
