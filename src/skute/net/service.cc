#include "skute/net/service.h"

#include "skute/common/logging.h"
#include "skute/obs/trace.h"

namespace skute {
namespace net {

bool StoreDispatcher::Dispatch(const Command& cmd, std::string* out,
                               NetStats* stats) {
  stats->ops++;
  switch (cmd.verb) {
    case Verb::kGet: {
      obs::TraceSpan span("net", "GET");
      Result<std::string> value = store_->ServeGet(cmd.ring, cmd.key);
      if (value.ok()) {
        EncodeValue(cmd.key, *value, out);
        stats->ops_ok++;
      } else if (value.status().IsNotFound()) {
        EncodeNotFound(out);
        stats->ops_not_found++;
      } else {
        EncodeError(value.status(), out);
        stats->ops_error++;
      }
      return true;
    }
    case Verb::kPut: {
      obs::TraceSpan span("net", "PUT");
      Status st = store_->Put(cmd.ring, cmd.key, cmd.value);
      if (st.ok()) {
        EncodeStored(out);
        stats->ops_ok++;
      } else {
        EncodeError(st, out);
        stats->ops_error++;
      }
      return true;
    }
    case Verb::kDelete: {
      obs::TraceSpan span("net", "DEL");
      Status st = store_->Delete(cmd.ring, cmd.key);
      if (st.ok()) {
        EncodeDeleted(out);
        stats->ops_ok++;
      } else if (st.IsNotFound()) {
        EncodeNotFound(out);
        stats->ops_not_found++;
      } else {
        EncodeError(st, out);
        stats->ops_error++;
      }
      return true;
    }
    case Verb::kStats: {
      obs::TraceSpan span("net", "STATS");
      const NetStats net = store_->net_lifetime();
      EncodeStatLine("epoch", store_->epoch(), out);
      EncodeStatLine("net_ops", net.ops, out);
      EncodeStatLine("net_ops_ok", net.ops_ok, out);
      EncodeStatLine("net_ops_not_found", net.ops_not_found, out);
      EncodeStatLine("net_ops_error", net.ops_error, out);
      EncodeStatLine("net_protocol_errors", net.protocol_errors, out);
      EncodeStatLine("net_conns_accepted", net.conns_accepted, out);
      EncodeStatLine("net_conns_shed", net.conns_shed, out);
      EncodeStatLine("lost_partitions", store_->lost_partitions(), out);
      EncodeEnd(out);
      stats->ops_ok++;
      return true;
    }
    case Verb::kQuit:
      EncodeBye(out);
      stats->ops_ok++;
      return false;
  }
  return true;
}

NetService::NetService(SkuteStore* store, Options options)
    : store_(store),
      options_(std::move(options)),
      dispatcher_(store),
      acceptor_(options_.acceptor, &dispatcher_,
                store->mutable_net_stats()) {}

NetService::~NetService() {
  if (started_) Shutdown();
}

Status NetService::Start() {
  if (started_) return Status::FailedPrecondition("service already started");
  SKUTE_RETURN_IF_ERROR(acceptor_.Listen());
  store_->epoch_pipeline().SetServeWindow([this] { ServeWindow(); });
  started_ = true;
  SKUTE_LOG(kInfo) << "net: serving on " << options_.acceptor.bind_address
                   << ":" << acceptor_.port() << " (budget "
                   << options_.acceptor.max_connections << " connections)";
  return Status::OK();
}

void NetService::ServeWindow() {
  obs::TraceSpan span("net", "serve_window");
  for (int round = 0; round < options_.max_pump_rounds; ++round) {
    if (acceptor_.Pump(/*timeout_ms=*/0) == 0) break;
  }
}

void NetService::Shutdown(int drain_deadline_ms) {
  if (!started_) return;
  store_->epoch_pipeline().SetServeWindow({});
  acceptor_.Drain(drain_deadline_ms);
  started_ = false;
}

}  // namespace net
}  // namespace skute
