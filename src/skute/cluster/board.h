#ifndef SKUTE_CLUSTER_BOARD_H_
#define SKUTE_CLUSTER_BOARD_H_

#include <cstdint>
#include <vector>

#include "skute/cluster/server.h"

namespace skute {

/// Parameters of the virtual-rent formula (Eq. 1):
///   c = up * (1 + alpha * storage_usage + beta * query_load)
/// where up = monthly_cost / epochs_per_month / max(mean_util, floor).
struct PricingParams {
  /// Eq. 1's "normalizing factors" (unspecified in the paper). alpha
  /// must make the storage-pressure rent spread wider than the migration
  /// savings gate (DecisionParams::migration_savings_threshold), or
  /// vnodes on full servers never find a target "cheap enough" to flee
  /// to and inserts start failing far below cluster saturation
  /// (Fig. 5 calibration; see DESIGN.md).
  double alpha = 4.0;
  double beta = 1.0;
  /// Epoch granularity: the paper prices per epoch against a monthly real
  /// rent; hourly epochs over a 30-day month by default.
  double epochs_per_month = 720.0;
  /// The "mean usage of the server in the previous month" that divides
  /// the marginal usage price. Every experiment in the paper is shorter
  /// than a month, so the divisor is a constant prior (default). Feeding
  /// the *live* trailing mean instead (use_live_mean_utilization) creates
  /// an idle-server death spiral: an empty server's usage history decays,
  /// its quoted rent rises, so it attracts even less — by 60% cluster
  /// utilization the overflow has nowhere to go (observed in the Fig. 5
  /// scenario; kept as an ablation).
  double reference_utilization = 0.5;
  bool use_live_mean_utilization = false;
  /// Utilization floor for the live-mean divisor, preventing an idle
  /// server from quoting an unbounded price.
  double min_mean_utilization = 0.10;
};

/// \brief The paper's price board: an elected server that publishes every
/// server's virtual rent at the start of each epoch.
///
/// Virtual-node agents read prices only from here, never from servers
/// directly, which reproduces the paper's information model (prices are a
/// snapshot, up to one epoch stale during an epoch).
class Board {
 public:
  explicit Board(const PricingParams& params) : params_(params) {}

  /// Recomputes all rents from the servers' last-epoch usage (Eq. 1).
  /// Offline servers get an infinite rent so no agent ever selects them.
  void UpdatePrices(const std::vector<Server*>& servers);

  /// Virtual rent of a server for the current epoch; +infinity for unknown
  /// or offline servers.
  double RentOf(ServerId id) const;

  /// The cluster-wide minimum rent over online servers — the utility floor
  /// of Section II-C ("sets lowest utility value to the current lowest
  /// virtual rent price"). 0 before the first update.
  double min_rent() const { return min_rent_; }

  /// Marginal usage price `up` of Eq. 1 for a given server (exposed for
  /// tests and benches).
  double MarginalUsagePrice(const Server& server) const;

  const PricingParams& params() const { return params_; }

  /// Number of price updates published (equals completed epochs).
  uint64_t updates_published() const { return updates_; }

 private:
  PricingParams params_;
  std::vector<double> rents_;  // indexed by ServerId
  double min_rent_ = 0.0;
  uint64_t updates_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CLUSTER_BOARD_H_
