#ifndef SKUTE_CLUSTER_CLUSTER_H_
#define SKUTE_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "skute/cluster/board.h"
#include "skute/cluster/server.h"
#include "skute/common/result.h"

namespace skute {

/// \brief The data cloud: server membership plus the price board.
///
/// Server ids are dense and never reused; a removed/failed server keeps its
/// slot but is offline. The Cluster owns the servers; everything above
/// refers to them by ServerId.
class Cluster {
 public:
  explicit Cluster(const PricingParams& pricing = PricingParams())
      : board_(pricing) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a server (initially online) and returns its id. `backend`
  /// selects the storage engine for the server's partition replicas.
  ServerId AddServer(const Location& location,
                     const ServerResources& resources,
                     const ServerEconomics& economics,
                     const BackendConfig& backend = BackendConfig{});

  /// Marks a server offline. Data it held is gone (hard failure); the
  /// storage accounting is wiped so a later recovery starts empty.
  Status FailServer(ServerId id);

  /// Brings a previously failed server back, empty.
  Status RecoverServer(ServerId id);

  /// Mutable/const access; nullptr for out-of-range ids.
  Server* server(ServerId id);
  const Server* server(ServerId id) const;

  /// Total number of slots ever allocated (online + offline).
  size_t size() const { return servers_.size(); }
  size_t online_count() const;

  /// Ids of all online servers, ascending.
  std::vector<ServerId> OnlineServers() const;

  /// Raw pointers to all servers (for the board update).
  std::vector<Server*> AllServers();

  Board& board() { return board_; }
  const Board& board() const { return board_; }

  /// Monotone membership counter: bumped by AddServer and every
  /// successful FailServer/RecoverServer. Caches keyed on a replica
  /// set's availability use it to detect online flips without scanning
  /// (confidence and location are immutable per server, so membership
  /// changes are the only way a server's Eq. 2 contribution moves).
  uint64_t topology_version() const { return topology_version_; }

  /// Starts a new epoch: rolls every server's counters, then publishes the
  /// new virtual rents from last epoch's usage (the paper's "virtual rent
  /// of each server is announced at a board ... updated at the beginning
  /// of a new epoch").
  void BeginEpoch();

  // Aggregates over online servers.
  uint64_t TotalStorageCapacity() const;
  uint64_t TotalUsedStorage() const;
  uint64_t TotalQueriesDroppedThisEpoch() const;
  /// Fraction of online capacity in use, in [0, 1].
  double StorageUtilization() const;

 private:
  std::vector<std::unique_ptr<Server>> servers_;
  Board board_;
  uint64_t topology_version_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CLUSTER_CLUSTER_H_
