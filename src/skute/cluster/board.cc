#include "skute/cluster/board.h"

#include <algorithm>
#include <limits>

namespace skute {

double Board::MarginalUsagePrice(const Server& server) const {
  const double per_epoch_cost =
      server.economics().monthly_cost / params_.epochs_per_month;
  const double mean_util =
      params_.use_live_mean_utilization
          ? std::max(server.mean_utilization(),
                     params_.min_mean_utilization)
          : params_.reference_utilization;
  return per_epoch_cost / mean_util;
}

void Board::UpdatePrices(const std::vector<Server*>& servers) {
  for (const Server* s : servers) {
    if (s->id() >= rents_.size()) {
      rents_.resize(s->id() + 1,
                    std::numeric_limits<double>::infinity());
    }
  }
  min_rent_ = std::numeric_limits<double>::infinity();
  for (const Server* s : servers) {
    if (!s->online()) {
      rents_[s->id()] = std::numeric_limits<double>::infinity();
      continue;
    }
    const double up = MarginalUsagePrice(*s);
    const double rent = up * (1.0 + params_.alpha * s->storage_utilization() +
                              params_.beta * s->query_utilization());
    rents_[s->id()] = rent;
    min_rent_ = std::min(min_rent_, rent);
  }
  if (min_rent_ == std::numeric_limits<double>::infinity()) {
    min_rent_ = 0.0;  // no online servers
  }
  ++updates_;
}

double Board::RentOf(ServerId id) const {
  if (id >= rents_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return rents_[id];
}

}  // namespace skute
