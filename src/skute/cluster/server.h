#ifndef SKUTE_CLUSTER_SERVER_H_
#define SKUTE_CLUSTER_SERVER_H_

#include <cstdint>
#include <limits>

#include "skute/backend/config.h"
#include "skute/common/result.h"
#include "skute/common/units.h"
#include "skute/topology/location.h"

namespace skute {

/// Dense server identifier assigned by the Cluster in arrival order.
using ServerId = uint32_t;
inline constexpr ServerId kInvalidServer =
    std::numeric_limits<ServerId>::max();

/// \brief Fixed, reserved capacities of a physical node (Section III-A:
/// fixed storage, fixed bandwidth for replication / migration / queries).
struct ServerResources {
  uint64_t storage_capacity = 16 * kGiB;
  /// Reserved transfer budgets, bytes per epoch.
  uint64_t replication_bw_per_epoch = 300 * kMB;
  uint64_t migration_bw_per_epoch = 100 * kMB;
  /// Query-serving capacity, queries per epoch.
  uint64_t query_capacity_per_epoch = 2500;
};

/// \brief Cost/trust profile of a server: what the data owner really pays
/// per month, and the paper's subjective confidence in [0, 1].
struct ServerEconomics {
  double monthly_cost = 100.0;
  double confidence = 1.0;
};

/// \brief One physical node of the data cloud.
///
/// The server owns its *resource accounting*: storage reservation, transfer
/// bandwidth with cross-epoch debt (see DESIGN.md "Bandwidth debt"), and
/// per-epoch query counters. Placement logic lives above, in
/// skute/core — a Server never decides anything.
class Server {
 public:
  Server(ServerId id, const Location& location,
         const ServerResources& resources, const ServerEconomics& economics,
         const BackendConfig& backend = BackendConfig{});

  ServerId id() const { return id_; }
  const Location& location() const { return location_; }
  const ServerResources& resources() const { return resources_; }
  const ServerEconomics& economics() const { return economics_; }

  /// Which storage engine this server's partition replicas run on (the
  /// store derives per-server BackendFactories from it).
  const BackendConfig& backend() const { return backend_; }

  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  /// Chaos net-partition flag: the server is alive (storage, durability,
  /// transfers all work) but cut from the client routing plane — routing
  /// treats its replicas as mix-unreachable until the partition heals.
  bool net_partitioned() const { return net_partitioned_; }
  void set_net_partitioned(bool partitioned) {
    net_partitioned_ = partitioned;
  }

  // --- Storage accounting -------------------------------------------------

  /// Reserves `bytes`; fails with kResourceExhausted when the capacity
  /// would be exceeded and kUnavailable when the server is offline.
  Status ReserveStorage(uint64_t bytes);

  /// Releases previously reserved bytes (clamped at zero; over-release is a
  /// caller bug surfaced by the kInternal status).
  Status ReleaseStorage(uint64_t bytes);

  /// Drops all stored bytes — models the data loss of a hard failure.
  void WipeStorage() { used_storage_ = 0; }

  uint64_t used_storage() const { return used_storage_; }
  uint64_t available_storage() const {
    return resources_.storage_capacity - used_storage_;
  }
  /// Fraction of storage in use, in [0, 1].
  double storage_utilization() const;

  // --- Transfer bandwidth (replication / migration) -----------------------

  /// Whether a replication transfer may start this epoch (debt below one
  /// epoch's budget). The transfer itself is charged with
  /// ChargeReplication().
  bool CanStartReplication() const {
    return online_ && replication_debt_ < resources_.replication_bw_per_epoch;
  }
  bool CanStartMigration() const {
    return online_ && migration_debt_ < resources_.migration_bw_per_epoch;
  }
  void ChargeReplication(uint64_t bytes) { replication_debt_ += bytes; }
  void ChargeMigration(uint64_t bytes) { migration_debt_ += bytes; }

  uint64_t replication_debt() const { return replication_debt_; }
  uint64_t migration_debt() const { return migration_debt_; }

  // --- Query serving ------------------------------------------------------

  /// Accepts up to the remaining per-epoch query capacity; returns how many
  /// of `n` queries were actually served (the rest are counted as dropped).
  uint64_t ServeQueries(uint64_t n);

  uint64_t queries_served_this_epoch() const { return queries_served_; }
  uint64_t queries_dropped_this_epoch() const { return queries_dropped_; }
  uint64_t queries_served_last_epoch() const { return last_queries_served_; }

  /// Query load of the previous (completed) epoch as a fraction of
  /// capacity, in [0, 1] — the `query_load` term of Eq. 1.
  double query_utilization() const;

  // --- Epoch lifecycle ----------------------------------------------------

  /// Rolls the per-epoch counters: pays down one epoch of bandwidth debt,
  /// archives query counters, and updates the trailing mean utilization
  /// that feeds the marginal usage price (Eq. 1's `up`).
  void BeginEpoch();

  /// The "mean usage of the server in the previous month" that Eq. 1's
  /// marginal usage price divides by. Starts from a 0.5 prior (a server
  /// is provisioned expecting ~half use) and drifts with a monthly EWMA —
  /// so over any experiment shorter than a month it is quasi-constant,
  /// and *current* congestion moves the rent only through Eq. 1's
  /// alpha/beta terms. Seeding this from live utilization instead would
  /// invert the congestion signal: a full server would quote ever lower
  /// rents and never shed load (observed: Fig. 5 insert failures at 63%
  /// instead of >90% cluster utilization).
  double mean_utilization() const { return mean_utilization_; }

  /// Number of epochs this server has been through (age).
  Epoch age_epochs() const { return age_; }

 private:
  ServerId id_;
  Location location_;
  ServerResources resources_;
  ServerEconomics economics_;
  BackendConfig backend_;

  bool online_ = true;
  bool net_partitioned_ = false;
  uint64_t used_storage_ = 0;

  uint64_t replication_debt_ = 0;
  uint64_t migration_debt_ = 0;

  uint64_t queries_served_ = 0;
  uint64_t queries_dropped_ = 0;
  uint64_t last_queries_served_ = 0;

  double mean_utilization_ = 0.5;  // previous-month prior; see accessor
  Epoch age_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CLUSTER_SERVER_H_
