#include "skute/cluster/cluster.h"

namespace skute {

ServerId Cluster::AddServer(const Location& location,
                            const ServerResources& resources,
                            const ServerEconomics& economics,
                            const BackendConfig& backend) {
  const ServerId id = static_cast<ServerId>(servers_.size());
  servers_.push_back(
      std::make_unique<Server>(id, location, resources, economics, backend));
  ++topology_version_;
  return id;
}

Status Cluster::FailServer(ServerId id) {
  Server* s = server(id);
  if (s == nullptr) return Status::NotFound("no such server");
  if (!s->online()) {
    return Status::FailedPrecondition("server already offline");
  }
  s->set_online(false);
  s->WipeStorage();
  ++topology_version_;
  return Status::OK();
}

Status Cluster::RecoverServer(ServerId id) {
  Server* s = server(id);
  if (s == nullptr) return Status::NotFound("no such server");
  if (s->online()) {
    return Status::FailedPrecondition("server already online");
  }
  s->set_online(true);
  ++topology_version_;
  return Status::OK();
}

Server* Cluster::server(ServerId id) {
  if (id >= servers_.size()) return nullptr;
  return servers_[id].get();
}

const Server* Cluster::server(ServerId id) const {
  if (id >= servers_.size()) return nullptr;
  return servers_[id].get();
}

size_t Cluster::online_count() const {
  size_t n = 0;
  for (const auto& s : servers_) {
    if (s->online()) ++n;
  }
  return n;
}

std::vector<ServerId> Cluster::OnlineServers() const {
  std::vector<ServerId> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) {
    if (s->online()) out.push_back(s->id());
  }
  return out;
}

std::vector<Server*> Cluster::AllServers() {
  std::vector<Server*> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s.get());
  return out;
}

void Cluster::BeginEpoch() {
  for (const auto& s : servers_) {
    if (s->online()) s->BeginEpoch();
  }
  board_.UpdatePrices(AllServers());
}

uint64_t Cluster::TotalStorageCapacity() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    if (s->online()) total += s->resources().storage_capacity;
  }
  return total;
}

uint64_t Cluster::TotalUsedStorage() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    if (s->online()) total += s->used_storage();
  }
  return total;
}

uint64_t Cluster::TotalQueriesDroppedThisEpoch() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->queries_dropped_this_epoch();
  }
  return total;
}

double Cluster::StorageUtilization() const {
  const uint64_t capacity = TotalStorageCapacity();
  if (capacity == 0) return 1.0;
  return static_cast<double>(TotalUsedStorage()) /
         static_cast<double>(capacity);
}

}  // namespace skute
