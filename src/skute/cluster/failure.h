#ifndef SKUTE_CLUSTER_FAILURE_H_
#define SKUTE_CLUSTER_FAILURE_H_

#include <vector>

#include "skute/cluster/cluster.h"
#include "skute/common/random.h"
#include "skute/topology/location.h"

namespace skute {

/// \brief Injects the failure classes the paper motivates: individual
/// machine failures, rack failures (~40-80 machines in a real datacenter),
/// and PDU/datacenter failures (~500-1000 machines). Scope failures take
/// out every online server under a location prefix.
class FailureInjector {
 public:
  explicit FailureInjector(Cluster* cluster) : cluster_(cluster) {}

  /// Fails `count` distinct online servers picked uniformly at random;
  /// returns the ids actually failed (fewer if the cluster is smaller).
  std::vector<ServerId> FailRandomServers(size_t count, Rng* rng);

  /// Fails every online server under `prefix` truncated at `level`
  /// (e.g. level=kRack: one rack; kDatacenter: a PDU failure).
  /// Returns the failed ids.
  std::vector<ServerId> FailScope(const Location& prefix, GeoLevel level);

  /// Recovers a set of servers (they come back empty).
  Status RecoverServers(const std::vector<ServerId>& ids);

  /// Total servers failed through this injector.
  size_t total_failed() const { return total_failed_; }

 private:
  Cluster* cluster_;
  size_t total_failed_ = 0;
};

}  // namespace skute

#endif  // SKUTE_CLUSTER_FAILURE_H_
