#include "skute/cluster/server.h"

#include <algorithm>

namespace skute {

namespace {
// EWMA weight chosen so the utilization memory spans roughly a month of
// hourly epochs (1/720); see ServerEconomics/Board for how it feeds `up`.
constexpr double kUtilizationEwmaWeight = 1.0 / 720.0;
}  // namespace

Server::Server(ServerId id, const Location& location,
               const ServerResources& resources,
               const ServerEconomics& economics,
               const BackendConfig& backend)
    : id_(id),
      location_(location),
      resources_(resources),
      economics_(economics),
      backend_(backend) {}

Status Server::ReserveStorage(uint64_t bytes) {
  if (!online_) {
    return Status::Unavailable("server offline");
  }
  if (used_storage_ + bytes > resources_.storage_capacity) {
    return Status::ResourceExhausted("storage capacity exceeded");
  }
  used_storage_ += bytes;
  return Status::OK();
}

Status Server::ReleaseStorage(uint64_t bytes) {
  if (bytes > used_storage_) {
    used_storage_ = 0;
    return Status::Internal("storage over-release");
  }
  used_storage_ -= bytes;
  return Status::OK();
}

double Server::storage_utilization() const {
  if (resources_.storage_capacity == 0) return 1.0;
  return static_cast<double>(used_storage_) /
         static_cast<double>(resources_.storage_capacity);
}

uint64_t Server::ServeQueries(uint64_t n) {
  if (!online_) {
    queries_dropped_ += n;
    return 0;
  }
  const uint64_t capacity = resources_.query_capacity_per_epoch;
  const uint64_t remaining =
      queries_served_ >= capacity ? 0 : capacity - queries_served_;
  const uint64_t accepted = std::min(n, remaining);
  queries_served_ += accepted;
  queries_dropped_ += n - accepted;
  return accepted;
}

double Server::query_utilization() const {
  if (resources_.query_capacity_per_epoch == 0) return 1.0;
  return std::min(1.0, static_cast<double>(last_queries_served_) /
                           static_cast<double>(
                               resources_.query_capacity_per_epoch));
}

void Server::BeginEpoch() {
  // Pay down one epoch of transfer debt.
  replication_debt_ -= std::min(replication_debt_,
                                resources_.replication_bw_per_epoch);
  migration_debt_ -= std::min(migration_debt_,
                              resources_.migration_bw_per_epoch);

  // Archive query counters.
  last_queries_served_ = queries_served_;
  queries_served_ = 0;
  queries_dropped_ = 0;

  // Trailing utilization for the marginal usage price. Deliberately slow
  // (monthly time constant) and seeded from a 0.5 prior: `up` is the
  // paper's *previous-month* mean usage, quasi-static against per-epoch
  // load, so short-term congestion moves the rent only through Eq. 1's
  // alpha/beta terms. A fast mean here would invert the congestion
  // signal (a hot server would look cheap), breaking the Section II-C
  // eviction dynamics.
  const double current =
      0.5 * (storage_utilization() + query_utilization());
  mean_utilization_ = (1.0 - kUtilizationEwmaWeight) * mean_utilization_ +
                      kUtilizationEwmaWeight * current;
  ++age_;
}

}  // namespace skute
