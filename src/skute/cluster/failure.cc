#include "skute/cluster/failure.h"

#include "skute/topology/topology.h"

namespace skute {

std::vector<ServerId> FailureInjector::FailRandomServers(size_t count,
                                                         Rng* rng) {
  std::vector<ServerId> online = cluster_->OnlineServers();
  rng->Shuffle(&online);
  if (online.size() > count) online.resize(count);
  for (ServerId id : online) {
    // Ignore per-server status: ids come fresh from OnlineServers().
    (void)cluster_->FailServer(id);
  }
  total_failed_ += online.size();
  return online;
}

std::vector<ServerId> FailureInjector::FailScope(const Location& prefix,
                                                 GeoLevel level) {
  std::vector<ServerId> failed;
  for (ServerId id : cluster_->OnlineServers()) {
    const Server* s = cluster_->server(id);
    if (LocationUnder(s->location(), prefix, level)) {
      (void)cluster_->FailServer(id);
      failed.push_back(id);
    }
  }
  total_failed_ += failed.size();
  return failed;
}

Status FailureInjector::RecoverServers(const std::vector<ServerId>& ids) {
  for (ServerId id : ids) {
    SKUTE_RETURN_IF_ERROR(cluster_->RecoverServer(id));
  }
  return Status::OK();
}

}  // namespace skute
