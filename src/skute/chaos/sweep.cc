#include "skute/chaos/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "skute/chaos/fault_plan.h"
#include "skute/obs/adapters.h"
#include "skute/obs/metrics_registry.h"
#include "skute/scenario/registry.h"
#include "skute/scenario/runner.h"

namespace skute {
namespace chaos {

namespace {

std::vector<std::string> SplitOn(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Expands one integer values segment: `lo..hi` or a `+`-list.
Status ParseIntValues(const std::string& key, const std::string& value,
                      std::vector<uint64_t>* out) {
  out->clear();
  const size_t dots = value.find("..");
  if (dots != std::string::npos) {
    char* end = nullptr;
    const uint64_t lo = std::strtoull(value.c_str(), &end, 10);
    const uint64_t hi = std::strtoull(value.c_str() + dots + 2, nullptr, 10);
    if (end != value.c_str() + dots || hi < lo) {
      return Status::InvalidArgument("--sweep: bad range '" + key + "=" +
                                     value + "' (want lo..hi)");
    }
    for (uint64_t v = lo; v <= hi; ++v) out->push_back(v);
    return Status::OK();
  }
  for (const std::string& item : SplitOn(value, '+')) {
    if (item.empty()) {
      return Status::InvalidArgument("--sweep: empty value in '" + key +
                                     "=" + value + "'");
    }
    out->push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  return Status::OK();
}

/// Zeroes the wall-clock columns (route_ms, stage_*) of a metrics CSV so
/// two runs of the same simulation compare bit for bit. Mirrors the
/// tests' csv_mask helper — the sweep is a shipping tool and cannot
/// reach into tests/.
std::string MaskTimingColumns(const std::string& csv) {
  std::istringstream lines(csv);
  std::string line;
  std::vector<size_t> timing_cols;
  std::string result;
  bool header = true;
  while (std::getline(lines, line)) {
    std::vector<std::string> fields;
    std::string field;
    std::istringstream split(line);
    while (std::getline(split, field, ',')) fields.push_back(field);
    if (header) {
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i] == "route_ms" || fields[i].rfind("stage_", 0) == 0) {
          timing_cols.push_back(i);
        }
      }
      header = false;
    } else {
      for (size_t col : timing_cols) {
        if (col < fields.size()) fields[col] = "0";
      }
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) result += ',';
      result += fields[i];
    }
    result += '\n';
  }
  return result;
}

void AccumulateChaos(ChaosStats* total, const ChaosStats& cell) {
  total->fsync_failures += cell.fsync_failures;
  total->torn_transfers += cell.torn_transfers;
  total->slow_flushes += cell.slow_flushes;
  total->throttle_us += cell.throttle_us;
  total->partitions_applied += cell.partitions_applied;
  total->partitions_healed += cell.partitions_healed;
}

}  // namespace

Result<SweepSpec> SweepSpec::Parse(std::string_view grammar) {
  SweepSpec spec;
  spec.seeds.clear();
  spec.threads.clear();
  spec.faults.clear();
  for (const std::string& segment : SplitOn(grammar, ',')) {
    if (segment.empty()) continue;
    const size_t eq = segment.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--sweep: segment '" + segment +
                                     "' is not key=values");
    }
    const std::string key = segment.substr(0, eq);
    const std::string value = segment.substr(eq + 1);
    if (key == "scenario") {
      for (const std::string& name : SplitOn(value, '+')) {
        if (!name.empty()) spec.scenarios.push_back(name);
      }
    } else if (key == "seed") {
      SKUTE_RETURN_IF_ERROR(ParseIntValues(key, value, &spec.seeds));
    } else if (key == "threads") {
      std::vector<uint64_t> parsed;
      SKUTE_RETURN_IF_ERROR(ParseIntValues(key, value, &parsed));
      for (uint64_t t : parsed) {
        if (t == 0 || t > 64) {
          return Status::InvalidArgument(
              "--sweep: threads must be in [1, 64]");
        }
        spec.threads.push_back(static_cast<int>(t));
      }
    } else if (key == "fault") {
      for (const std::string& name : SplitOn(value, '+')) {
        if (name.empty()) continue;
        SKUTE_RETURN_IF_ERROR(FaultPlan::Named(name).status());
        spec.faults.push_back(name);
      }
    } else {
      return Status::InvalidArgument(
          "--sweep: unknown key '" + key +
          "' (want scenario|seed|threads|fault)");
    }
  }
  if (spec.scenarios.empty()) {
    return Status::InvalidArgument("--sweep: at least one scenario=... "
                                   "is required");
  }
  if (spec.seeds.empty()) spec.seeds.push_back(42);
  if (spec.threads.empty()) spec.threads.push_back(1);
  if (spec.faults.empty()) spec.faults.emplace_back("none");
  return spec;
}

Result<SweepReport> RunSweep(const SweepSpec& spec,
                             const SweepOptions& options) {
  scenario::RegisterBuiltinScenarios();
  // Resolve (and vet) every scenario before burning any cell time.
  std::vector<const scenario::ScenarioSpec*> specs;
  for (const std::string& name : spec.scenarios) {
    Result<const scenario::ScenarioSpec*> found =
        scenario::ScenarioRegistry::Global().Find(name);
    SKUTE_RETURN_IF_ERROR(found.status());
    if ((*found)->custom_main) {
      return Status::InvalidArgument(
          "--sweep: scenario '" + name +
          "' is a custom-main experiment and cannot be swept");
    }
    specs.push_back(*found);
  }

  SweepReport report;
  report.cells.reserve(spec.cells());
  // Baseline masked CSV per (scenario, seed, fault): the first thread
  // count executed sets it, every other thread count must reproduce it
  // bit for bit — determinism under chaos, checked inside the sweep.
  std::map<std::tuple<std::string, uint64_t, std::string>, std::string>
      baselines;

  size_t index = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    for (const std::string& fault : spec.faults) {
      for (const uint64_t seed : spec.seeds) {
        for (const int threads : spec.threads) {
          SweepCell cell;
          cell.scenario = spec.scenarios[s];
          cell.fault = fault;
          cell.seed = seed;
          cell.threads = threads;

          scenario::RunOverrides overrides = options.base;
          overrides.seed = seed;
          overrides.threads = threads;
          overrides.fault = fault;
          // A sweep owns reporting; per-cell outputs and the service
          // plane (which would fight over one port) are disabled.
          overrides.out.clear();
          overrides.trace.clear();
          overrides.metrics_json.clear();
          overrides.serve_port = -1;
          overrides.net_clients = 0;

          std::ostringstream csv;
          scenario::ScenarioRunner::Options run_options;
          run_options.print = false;
          run_options.csv_capture = &csv;
          run_options.chaos_out = &cell.chaos;
          const scenario::ScenarioRunner::Outcome outcome =
              scenario::ScenarioRunner::Execute(*specs[s], overrides,
                                                run_options);
          cell.ran = outcome.status.ok();
          cell.failed_checks = outcome.failed_checks;
          cell.epochs_run = outcome.epochs_run;

          if (cell.ran) {
            const std::string masked = MaskTimingColumns(csv.str());
            const auto key =
                std::make_tuple(cell.scenario, seed, fault);
            auto [it, inserted] = baselines.emplace(key, masked);
            if (!inserted && it->second != masked) {
              cell.csv_match = false;
              ++report.csv_mismatches;
            }
          }
          AccumulateChaos(&report.chaos_total, cell.chaos);
          if (cell.pass()) ++report.passed;

          ++index;
          if (options.print) {
            std::printf(
                "[%3zu/%zu] %-22s fault=%-14s seed=%llu threads=%d  "
                "%s (%d checks failed, %llu faults fired)%s\n",
                index, spec.cells(), cell.scenario.c_str(), fault.c_str(),
                static_cast<unsigned long long>(seed), threads,
                cell.pass() ? "pass" : "FAIL", cell.failed_checks,
                static_cast<unsigned long long>(cell.chaos.total_fired()),
                cell.csv_match ? "" : " [csv mismatch]");
          }
          report.cells.push_back(std::move(cell));
        }
      }
    }
  }

  if (!options.out_csv.empty()) {
    std::ofstream out(options.out_csv, std::ios::trunc);
    if (!out) {
      return Status::Unavailable("--sweep-out: cannot write " +
                                 options.out_csv);
    }
    out << "scenario,fault,seed,threads,ran,failed_checks,epochs_run,"
           "csv_match,chaos_fired,fsync_failures,torn_transfers,"
           "slow_flushes,throttle_us,partitions_applied,"
           "partitions_healed\n";
    for (const SweepCell& c : report.cells) {
      out << c.scenario << ',' << c.fault << ',' << c.seed << ','
          << c.threads << ',' << (c.ran ? 1 : 0) << ',' << c.failed_checks
          << ',' << c.epochs_run << ',' << (c.csv_match ? 1 : 0) << ','
          << c.chaos.total_fired() << ',' << c.chaos.fsync_failures << ','
          << c.chaos.torn_transfers << ',' << c.chaos.slow_flushes << ','
          << c.chaos.throttle_us << ',' << c.chaos.partitions_applied
          << ',' << c.chaos.partitions_healed << '\n';
    }
  }

  if (!options.out_json.empty()) {
    obs::MetricsRegistry registry;
    registry.SetInfo("sweep.grammar", "scenario x seed x threads x fault");
    registry.SetCounter("sweep.cells",
                        static_cast<uint64_t>(report.cells.size()));
    registry.SetCounter("sweep.passed",
                        static_cast<uint64_t>(report.passed));
    registry.SetCounter(
        "sweep.failed",
        static_cast<uint64_t>(report.cells.size() - report.passed));
    registry.SetCounter("sweep.csv_mismatches",
                        static_cast<uint64_t>(report.csv_mismatches));
    registry.SetCounter("sweep.scenarios",
                        static_cast<uint64_t>(spec.scenarios.size()));
    registry.SetCounter("sweep.seeds",
                        static_cast<uint64_t>(spec.seeds.size()));
    registry.SetCounter("sweep.threads",
                        static_cast<uint64_t>(spec.threads.size()));
    registry.SetCounter("sweep.faults",
                        static_cast<uint64_t>(spec.faults.size()));
    obs::RegisterChaosStats(&registry, "chaos", report.chaos_total);
    SKUTE_RETURN_IF_ERROR(registry.WriteJson(options.out_json));
  }

  if (options.print) {
    std::printf(
        "sweep: %zu/%zu cells passed, %zu csv mismatches, "
        "%llu faults fired total\n",
        report.passed, report.cells.size(), report.csv_mismatches,
        static_cast<unsigned long long>(report.chaos_total.total_fired()));
  }
  return report;
}

}  // namespace chaos
}  // namespace skute
