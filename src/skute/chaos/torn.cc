#include "skute/chaos/torn.h"

#include <algorithm>

#include "skute/chaos/fault.h"

namespace skute {
namespace chaos {

std::string TornTail(std::string_view bytes, size_t keep) {
  keep = std::min(keep, bytes.size());
  return std::string(bytes.substr(0, keep));
}

size_t TornKeepLength(uint64_t seed, uint64_t epoch, uint64_t salt,
                      uint64_t a, uint64_t b, size_t full) {
  if (full == 0) return 0;
  // Second independent draw (salt rotated) so the tear point does not
  // correlate with the fire/no-fire decision.
  const uint64_t h = FaultHash(seed, epoch, salt ^ 0x7f4a7c15ull, a, b);
  return static_cast<size_t>(h % full);
}

}  // namespace chaos
}  // namespace skute
