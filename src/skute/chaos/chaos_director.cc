#include "skute/chaos/chaos_director.h"

#include "skute/obs/trace.h"

namespace skute {
namespace chaos {

namespace {
constexpr uint64_t kPartitionWord = 0x50415254ull;  // "PART"
}  // namespace

void ChaosDirector::Apply(const Fault& fault, Epoch epoch,
                          Cluster* cluster) {
  obs::TraceSpan span("chaos", FaultKindName(fault.kind), fault.per_mille);
  switch (fault.kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kFsyncFail:
      state_.fsync_salt.store(fault.salt, std::memory_order_relaxed);
      state_.fsync_fail_pm.store(fault.per_mille,
                                 std::memory_order_relaxed);
      return;
    case FaultKind::kTornTransfer:
      state_.torn_salt.store(fault.salt, std::memory_order_relaxed);
      state_.torn_pm.store(fault.per_mille, std::memory_order_relaxed);
      return;
    case FaultKind::kSlowDisk:
      state_.slow_us.store(fault.per_mille == 0 ? 0 : fault.slow_us,
                           std::memory_order_relaxed);
      return;
    case FaultKind::kNetPartition: {
      const uint64_t seed = state_.seed.load(std::memory_order_relaxed);
      for (ServerId id = 0; id < cluster->size(); ++id) {
        Server* s = cluster->server(id);
        if (s == nullptr || !s->online() || s->net_partitioned()) continue;
        if (FaultFires(seed, epoch, fault.salt ^ kPartitionWord, id, 0,
                       fault.per_mille)) {
          s->set_net_partitioned(true);
          counters_.partitions_applied.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      return;
    }
    case FaultKind::kHealPartition: {
      for (ServerId id = 0; id < cluster->size(); ++id) {
        Server* s = cluster->server(id);
        if (s == nullptr || !s->net_partitioned()) continue;
        s->set_net_partitioned(false);
        counters_.partitions_healed.fetch_add(1,
                                              std::memory_order_relaxed);
      }
      return;
    }
  }
}

}  // namespace chaos
}  // namespace skute
