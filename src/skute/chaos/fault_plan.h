#ifndef SKUTE_CHAOS_FAULT_PLAN_H_
#define SKUTE_CHAOS_FAULT_PLAN_H_

#include <string>
#include <string_view>
#include <vector>

#include "skute/chaos/fault.h"
#include "skute/common/result.h"
#include "skute/sim/events.h"

namespace skute {
namespace chaos {

/// One armed window of a plan: `fault` switches on at run-epoch `from`
/// and off at `to` (0 = stays armed to the end of the run).
struct FaultWindow {
  Fault fault{};
  Epoch from = 0;
  Epoch to = 0;
};

/// \brief A named, typed schedule of faults — the unit the sweep driver
/// and `--fault=<plan>` select. Storage/routing windows compile into
/// `SimEvent::Chaos` entries on the scenario's event schedule; the
/// net-plane knobs ride into the load generator's options.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Resolves a builtin plan by name; InvalidArgument (listing the
  /// known names) otherwise. "none" is the empty plan.
  static Result<FaultPlan> Named(std::string_view name);
  static std::vector<std::string> BuiltinNames();

  /// The plan's chaos events, ready for Simulation::ScheduleEvent. Arm
  /// at `from`, disarm at `to` when set; windows past the run's end
  /// simply never fire.
  std::vector<SimEvent> Compile() const;

  const std::string& name() const { return name_; }
  bool empty() const {
    return windows_.empty() && conn_reset_per_mille == 0 &&
           client_stall_ms == 0;
  }

  /// Adds a window; the window's salt is derived from its index so
  /// draws of co-armed windows stay independent.
  void AddWindow(FaultWindow window);
  const std::vector<FaultWindow>& windows() const { return windows_; }

  // --- net-plane chaos (load generator) --------------------------------
  /// Probability (per mille, per op) that a client deliberately resets
  /// its connection mid-stream — exercising reconnect-with-backoff.
  uint32_t conn_reset_per_mille = 0;
  /// Occasional client stall between ops, milliseconds (exercises the
  /// acceptor's idle-connection reaping).
  uint32_t client_stall_ms = 0;

 private:
  std::string name_ = "none";
  std::vector<FaultWindow> windows_;
};

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_FAULT_PLAN_H_
