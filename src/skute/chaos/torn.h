#ifndef SKUTE_CHAOS_TORN_H_
#define SKUTE_CHAOS_TORN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace skute {
namespace chaos {

/// Returns `bytes` truncated to `keep` bytes — the canonical torn-write
/// shape: an intact prefix with the tail simply missing, exactly what a
/// crash mid-append leaves on disk.
std::string TornTail(std::string_view bytes, size_t keep);

/// Deterministic truncation point for a torn transfer of `full` bytes:
/// somewhere in [0, full), never the complete payload. Returns 0 when
/// `full` is 0.
size_t TornKeepLength(uint64_t seed, uint64_t epoch, uint64_t salt,
                      uint64_t a, uint64_t b, size_t full);

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_TORN_H_
