#ifndef SKUTE_CHAOS_FAULT_H_
#define SKUTE_CHAOS_FAULT_H_

#include <cstdint>

namespace skute {
namespace chaos {

/// The fault taxonomy. Every kind is armed/disarmed by a scheduled
/// `SimEvent` (Kind::kChaos) and fires deterministically from a pure
/// hash of (seed, epoch, identity, nonce) — never from shared mutable
/// RNG state — so `threads=1 ≡ threads=N` holds with chaos enabled.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// Storage: `Flush()` on faulted backends fails with probability
  /// `per_mille` (returns kInternal instead of fsyncing). Exercises the
  /// IoPool's bounded retry path.
  kFsyncFail,
  /// Storage: snapshot/delta exports are torn — truncated at a
  /// deterministic byte offset — with probability `per_mille`.
  /// Exercises CRC-guarded import rejection and the executor's
  /// blocked-transfer handling.
  kTornTransfer,
  /// Storage: every flush on faulted backends is throttled by
  /// `slow_us` microseconds of emulated disk latency, metered into
  /// `IoStats::throttle_us`.
  kSlowDisk,
  /// Network: each server is cut from the client routing plane
  /// (mix-unreachable) with probability `per_mille`. Routing skips
  /// partitioned replicas exactly like zero-proximity ones.
  kNetPartition,
  /// Network: clear every partition applied by kNetPartition.
  kHealPartition,
};

/// One scheduled fault transition. `per_mille = 0` disarms the window
/// for the storage kinds.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  /// Firing probability in 1/1000ths (1000 = always).
  uint32_t per_mille = 0;
  /// kSlowDisk only: emulated latency per flush, microseconds.
  uint32_t slow_us = 0;
  /// Distinguishes draws of independent windows sharing a seed.
  uint64_t salt = 0;
};

const char* FaultKindName(FaultKind kind);

/// Deterministic fault draw: a SplitMix64-style avalanche over the
/// scenario seed, the epoch the window is evaluated in, the fault salt,
/// and two identity words (e.g. server id + per-backend nonce). Pure —
/// safe to call from any thread, bit-identical at any thread count.
inline uint64_t FaultHash(uint64_t seed, uint64_t epoch, uint64_t salt,
                          uint64_t a, uint64_t b) {
  uint64_t x = seed;
  x += 0x9e3779b97f4a7c15ull * (epoch + 1);
  x ^= salt * 0xc2b2ae3d27d4eb4full;
  x += a * 0xd6e8feb86659fd93ull;
  x ^= b * 0xa0761d6478bd642full;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

inline bool FaultFires(uint64_t seed, uint64_t epoch, uint64_t salt,
                       uint64_t a, uint64_t b, uint32_t per_mille) {
  if (per_mille == 0) return false;
  if (per_mille >= 1000) return true;
  return FaultHash(seed, epoch, salt, a, b) % 1000 < per_mille;
}

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_FAULT_H_
