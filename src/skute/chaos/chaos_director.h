#ifndef SKUTE_CHAOS_CHAOS_DIRECTOR_H_
#define SKUTE_CHAOS_CHAOS_DIRECTOR_H_

#include <cstdint>

#include "skute/chaos/fault.h"
#include "skute/chaos/fault_state.h"
#include "skute/cluster/cluster.h"

namespace skute {
namespace chaos {

/// \brief Owns the shared fault state and applies scheduled chaos
/// events: arms/disarms the storage fault windows and cuts/heals net
/// partitions on the cluster. Lives on the Simulation (created by
/// EnableChaos) and is driven from the epoch thread only — Step
/// publishes the epoch, ApplyEvent routes Kind::kChaos here.
class ChaosDirector {
 public:
  explicit ChaosDirector(uint64_t seed) {
    state_.seed.store(seed, std::memory_order_relaxed);
  }

  ChaosDirector(const ChaosDirector&) = delete;
  ChaosDirector& operator=(const ChaosDirector&) = delete;

  const StorageFaultState* state() const { return &state_; }
  ChaosCounters* counters() { return &counters_; }

  /// Publishes the run epoch every backend draw mixes in. Call at the
  /// top of each Step, before any stage runs.
  void BeginEpoch(Epoch epoch) {
    state_.epoch.store(epoch, std::memory_order_relaxed);
  }

  /// Applies one chaos event at `epoch`: storage kinds update the armed
  /// windows; partition kinds deterministically cut/heal servers on
  /// `cluster` (a server is cut when the seeded draw fires).
  void Apply(const Fault& fault, Epoch epoch, Cluster* cluster);

  ChaosStats stats() const { return SnapshotCounters(counters_); }

 private:
  StorageFaultState state_;
  ChaosCounters counters_;
};

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_CHAOS_DIRECTOR_H_
