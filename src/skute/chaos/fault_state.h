#ifndef SKUTE_CHAOS_FAULT_STATE_H_
#define SKUTE_CHAOS_FAULT_STATE_H_

#include <atomic>
#include <cstdint>

namespace skute {
namespace chaos {

/// The armed fault windows shared between the `ChaosDirector` (writer,
/// on the epoch thread) and every `FaultyBackend` (readers, possibly on
/// IoPool workers). All fields are atomics with relaxed semantics: the
/// director only mutates them at epoch boundaries, which are separated
/// from worker activity by the engine's stage barriers, so readers
/// always observe a stable window for the whole epoch.
struct StorageFaultState {
  /// The scenario seed every deterministic draw mixes in.
  std::atomic<uint64_t> seed{0};
  /// The current epoch, published by the director each Step before any
  /// stage runs.
  std::atomic<uint64_t> epoch{0};
  /// kFsyncFail window: probability (per mille) that a Flush fails.
  std::atomic<uint32_t> fsync_fail_pm{0};
  std::atomic<uint64_t> fsync_salt{0};
  /// kTornTransfer window: probability (per mille) that a snapshot or
  /// delta export is truncated.
  std::atomic<uint32_t> torn_pm{0};
  std::atomic<uint64_t> torn_salt{0};
  /// kSlowDisk window: emulated latency per flush (0 = off).
  std::atomic<uint32_t> slow_us{0};

  bool any_armed() const {
    return fsync_fail_pm.load(std::memory_order_relaxed) != 0 ||
           torn_pm.load(std::memory_order_relaxed) != 0 ||
           slow_us.load(std::memory_order_relaxed) != 0;
  }
};

/// Cross-plane chaos tallies, incremented wherever a fault actually
/// fires. Snapshot with `Snapshot()` for metrics export.
struct ChaosCounters {
  std::atomic<uint64_t> fsync_failures{0};
  std::atomic<uint64_t> torn_transfers{0};
  std::atomic<uint64_t> slow_flushes{0};
  std::atomic<uint64_t> throttle_us{0};
  std::atomic<uint64_t> partitions_applied{0};
  std::atomic<uint64_t> partitions_healed{0};
};

/// Plain-value snapshot of `ChaosCounters` (metrics/report friendly).
struct ChaosStats {
  uint64_t fsync_failures = 0;
  uint64_t torn_transfers = 0;
  uint64_t slow_flushes = 0;
  uint64_t throttle_us = 0;
  uint64_t partitions_applied = 0;
  uint64_t partitions_healed = 0;

  uint64_t total_fired() const {
    return fsync_failures + torn_transfers + slow_flushes +
           partitions_applied;
  }
};

inline ChaosStats SnapshotCounters(const ChaosCounters& c) {
  ChaosStats s;
  s.fsync_failures = c.fsync_failures.load(std::memory_order_relaxed);
  s.torn_transfers = c.torn_transfers.load(std::memory_order_relaxed);
  s.slow_flushes = c.slow_flushes.load(std::memory_order_relaxed);
  s.throttle_us = c.throttle_us.load(std::memory_order_relaxed);
  s.partitions_applied =
      c.partitions_applied.load(std::memory_order_relaxed);
  s.partitions_healed = c.partitions_healed.load(std::memory_order_relaxed);
  return s;
}

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_FAULT_STATE_H_
