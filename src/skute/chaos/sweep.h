#ifndef SKUTE_CHAOS_SWEEP_H_
#define SKUTE_CHAOS_SWEEP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "skute/chaos/fault_state.h"
#include "skute/common/result.h"
#include "skute/scenario/spec.h"

namespace skute {
namespace chaos {

/// \brief The sweep grid: scenario × seed × threads × fault, parsed from
/// the `--sweep=` grammar. One invocation runs every cell and reports
/// aggregate robustness evidence — shape-check pass rate, cross-thread
/// CSV determinism, and per-cell chaos counters.
///
/// Grammar (comma-separated `key=values` segments):
///   scenario=a+b      `+`-separated scenario names (required)
///   seed=1..10        integer range (`lo..hi`) or `+`-list
///   threads=1..4      integer range or `+`-list
///   fault=none+disk_flaky   `+`-separated builtin fault-plan names
/// Omitted keys default to seed=42, threads=1, fault=none.
struct SweepSpec {
  std::vector<std::string> scenarios;
  std::vector<uint64_t> seeds = {42};
  std::vector<int> threads = {1};
  std::vector<std::string> faults = {"none"};

  /// Parses the `--sweep=` value. InvalidArgument on malformed
  /// segments, unknown keys, empty scenario lists, or fault names that
  /// do not resolve to a builtin plan.
  static Result<SweepSpec> Parse(std::string_view grammar);

  size_t cells() const {
    return scenarios.size() * seeds.size() * threads.size() * faults.size();
  }
};

/// One grid cell's outcome.
struct SweepCell {
  std::string scenario;
  std::string fault;
  uint64_t seed = 0;
  int threads = 0;

  bool ran = false;          ///< initialization succeeded
  int failed_checks = 0;     ///< shape checks that did not hold
  int epochs_run = 0;
  ChaosStats chaos;          ///< what the fault plan actually fired
  /// Masked metrics CSV identical to the threads=min cell of the same
  /// (scenario, seed, fault) — the determinism invariant under chaos.
  bool csv_match = true;

  bool pass() const { return ran && failed_checks == 0 && csv_match; }
};

struct SweepOptions {
  /// Per-cell base overrides (backend, real_data, io_threads, epochs...);
  /// seed/threads/fault are replaced cell by cell, output/serve flags
  /// are ignored (a sweep owns its own reporting).
  scenario::RunOverrides base;
  /// "" = off; aggregate per-cell CSV report.
  std::string out_csv;
  /// "" = off; aggregate MetricsRegistry JSON snapshot.
  std::string out_json;
  bool print = true;
};

struct SweepReport {
  std::vector<SweepCell> cells;
  size_t passed = 0;
  size_t csv_mismatches = 0;
  ChaosStats chaos_total;  ///< counters summed over every cell

  bool all_passed() const {
    return passed == cells.size() && csv_mismatches == 0;
  }
};

/// Runs the whole grid in-process (print-free scenario executions with
/// CSV capture), checks threads=1 ≡ threads=N per (scenario, seed,
/// fault) group on timing-masked CSVs, and writes the aggregate
/// reports. Errors only on grid-level problems (unknown scenario,
/// unwritable report file); per-cell failures land in the report.
Result<SweepReport> RunSweep(const SweepSpec& spec,
                             const SweepOptions& options);

}  // namespace chaos
}  // namespace skute

#endif  // SKUTE_CHAOS_SWEEP_H_
