#include "skute/chaos/fault_plan.h"

#include <utility>

namespace skute {
namespace chaos {

namespace {

Fault Make(FaultKind kind, uint32_t per_mille, uint32_t slow_us = 0) {
  Fault f;
  f.kind = kind;
  f.per_mille = per_mille;
  f.slow_us = slow_us;
  return f;
}

}  // namespace

void FaultPlan::AddWindow(FaultWindow window) {
  window.fault.salt = (windows_.size() + 1) * 0x9e3779b9ull ^
                      static_cast<uint64_t>(window.fault.kind);
  windows_.push_back(window);
}

std::vector<SimEvent> FaultPlan::Compile() const {
  std::vector<SimEvent> events;
  for (const FaultWindow& w : windows_) {
    events.push_back(SimEvent::Chaos(w.from, w.fault));
    if (w.to > w.from) {
      Fault off = w.fault;
      if (off.kind == FaultKind::kNetPartition) {
        off.kind = FaultKind::kHealPartition;
        off.per_mille = 1000;
      } else {
        off.per_mille = 0;
        off.slow_us = 0;
      }
      events.push_back(SimEvent::Chaos(w.to, off));
    }
  }
  return events;
}

std::vector<std::string> FaultPlan::BuiltinNames() {
  return {"none",           "disk_flaky", "disk_slow", "torn_transfer",
          "ring_partition", "net_chaos",  "kitchen_sink"};
}

Result<FaultPlan> FaultPlan::Named(std::string_view name) {
  FaultPlan plan;
  plan.name_ = std::string(name);
  if (name == "none") {
    return plan;
  }
  if (name == "disk_flaky") {
    // ~1 in 40 flushes fails from epoch 2 on: the IoPool's bounded
    // retry absorbs almost all of them (each retry re-draws), and the
    // rare triple failure surfaces as a loud failed_flush. Hot enough
    // to fire thousands of times per run, cold enough that the error
    // log stays readable.
    plan.AddWindow({Make(FaultKind::kFsyncFail, 25), 2, 0});
    return plan;
  }
  if (name == "disk_slow") {
    // ~1 in 20 flushes pays 200us of emulated seek latency — enough to
    // meter real throttle time through IoStats without stretching a
    // full-fleet run by minutes (every backend flushes every epoch).
    plan.AddWindow({Make(FaultKind::kSlowDisk, 50, 200), 1, 0});
    return plan;
  }
  if (name == "torn_transfer") {
    // ~1 in 4 snapshot/delta exports is torn mid-record; imports reject
    // via CRC, the executor treats the transfer as blocked (source kept
    // intact) and the decision plane re-proposes.
    plan.AddWindow({Make(FaultKind::kTornTransfer, 250), 2, 0});
    return plan;
  }
  if (name == "ring_partition") {
    // A quarter of the fleet drops off the client routing plane at
    // epoch 3 and heals at epoch 12.
    plan.AddWindow({Make(FaultKind::kNetPartition, 250), 3, 12});
    return plan;
  }
  if (name == "net_chaos") {
    // Pure client-plane chaos: connection resets + stalls. No storage
    // windows, so it composes with any serve-mode scenario.
    plan.conn_reset_per_mille = 150;
    plan.client_stall_ms = 5;
    return plan;
  }
  if (name == "kitchen_sink") {
    plan.AddWindow({Make(FaultKind::kFsyncFail, 20), 2, 0});
    plan.AddWindow({Make(FaultKind::kTornTransfer, 150), 3, 0});
    plan.AddWindow({Make(FaultKind::kSlowDisk, 25, 100), 4, 0});
    plan.AddWindow({Make(FaultKind::kNetPartition, 150), 5, 10});
    plan.conn_reset_per_mille = 100;
    return plan;
  }
  std::string known;
  for (const std::string& n : BuiltinNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::InvalidArgument("unknown fault plan '" +
                                 std::string(name) + "' (known: " + known +
                                 ")");
}

}  // namespace chaos
}  // namespace skute
