#include "skute/chaos/fault.h"

namespace skute {
namespace chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFsyncFail:
      return "fsync_fail";
    case FaultKind::kTornTransfer:
      return "torn_transfer";
    case FaultKind::kSlowDisk:
      return "slow_disk";
    case FaultKind::kNetPartition:
      return "net_partition";
    case FaultKind::kHealPartition:
      return "heal_partition";
  }
  return "unknown";
}

}  // namespace chaos
}  // namespace skute
